package core

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/casm-project/casm/internal/transport"
	"github.com/casm-project/casm/internal/workload"
)

// TestMorselEquivalenceByteIdentical is the engine-level morsel ≡
// fixed-split property: over random bit-stable workflows, both transports,
// a forced-spill sorter budget (SortMemoryItems=2), and a forced-overflow
// local table (LocalAggBudget=2), morsel-driven map execution must produce
// byte-identical measure output to the fixed-split path (and agree with
// the single-block oracle). This is what licenses flipping MorselBytes on
// for any workload: the knob may only move wall time, never a bit of
// output.
func TestMorselEquivalenceByteIdentical(t *testing.T) {
	su := workload.NewSuite()
	seeds := 5
	if testing.Short() {
		seeds = 2
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(7000 + seed)))
			w := randomWorkflowOpts(t, su.Schema, rng, true)
			records := su.Generate(400+rng.Intn(800), workload.Uniform, int64(seed))
			ds := MemoryDataset(su.Schema, records, 2+rng.Intn(5))
			want := oracle(t, w, records)
			reducers := 1 + rng.Intn(6)

			for _, tp := range []struct {
				name    string
				factory transport.Factory
			}{
				{"channel", nil},
				{"tcp", transport.TCPFactory(64)},
			} {
				var baseOut, baseLabel string
				for _, morselBytes := range []int{0, 512} { // 0 = fixed splits; 512 carves every split
					// EarlyAggAuto (not On): random workflows may draw
					// holistic measures, where the combiner legitimately
					// cannot run; Auto exercises the local table exactly
					// when it is allowed to exist.
					for _, early := range []EarlyAggMode{EarlyAggOff, EarlyAggAuto} {
						label := fmt.Sprintf("transport=%s morsel=%d early=%v", tp.name, morselBytes, early)
						cfg := Config{
							NumReducers:      reducers,
							Transport:        tp.factory,
							EarlyAggregation: early,
							SortMemoryItems:  2, // force reduce-side spills
							MorselBytes:      morselBytes,
							LocalAggBudget:   2, // force local-table overflow flushes
						}
						res := runEngine(t, cfg, w, ds)
						compare(t, label, want, flatten(res))
						out := canonicalOutput(res)
						if baseOut == "" {
							baseOut, baseLabel = out, label
						} else if out != baseOut {
							t.Errorf("output of %q differs byte-wise from %q", label, baseLabel)
						}
					}
				}
			}
		})
	}
}
