package core

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/casm-project/casm/internal/blockstore"
	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/mr"
	"github.com/casm-project/casm/internal/workload"
)

// TestFaultMatrix drives the failure semantics end to end: every injected
// storage fault must leave the query answer byte-identical to the healthy
// baseline, and every run must leave its spill directory empty. The
// matrix covers the four failure windows the store and cache are designed
// around: a torn segment tail from a crash mid-append, a bit-flip caught
// by block checksums, a replica lost while a scan is underway, and a
// crash between result-cache entry writes and the manifest commit.
func TestFaultMatrix(t *testing.T) {
	su := workload.NewSuite()
	records := su.Generate(2500, workload.Uniform, 41)
	w := su.Q2()
	want := oracle(t, w, records)

	// Baseline: healthy store, no cache. Its canonical result bytes are
	// the reference every fault scenario must reproduce exactly.
	baseDir := t.TempDir()
	baseSpill := t.TempDir()
	st := openFaultStore(t, baseDir, records, su)
	res := runEngine(t, Config{NumReducers: 3, TempDir: baseSpill}, w, faultDataset(st, su))
	compare(t, "baseline", want, flatten(res))
	baseline := resultBytes(t, res)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	assertEmptyDir(t, "baseline", baseSpill)

	t.Run("torn-tail", func(t *testing.T) {
		dir := t.TempDir()
		st := openFaultStore(t, dir, records, su)
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		// A crash mid-append leaves a partial entry at the end of a
		// segment; garbage past the last committed block models it.
		for _, seg := range segmentFiles(t, dir) {
			f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte("torn tail garbage, not a valid entry")); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
		}
		st2, err := blockstore.Open(faultStoreConfig(dir))
		if err != nil {
			t.Fatalf("reopen after torn tails: %v", err)
		}
		defer st2.Close()
		if got := st2.Stats().TornTails; got == 0 {
			t.Fatal("open did not report any torn tails")
		}
		spill := t.TempDir()
		res := runEngine(t, Config{NumReducers: 3, TempDir: spill}, w, faultDataset(st2, su))
		if !bytes.Equal(baseline, resultBytes(t, res)) {
			t.Fatal("answer after torn-tail recovery not byte-identical to baseline")
		}
		assertEmptyDir(t, "torn-tail", spill)
	})

	t.Run("bit-flip", func(t *testing.T) {
		dir := t.TempDir()
		st := openFaultStore(t, dir, records, su)
		defer st.Close()
		// Trash one node's replicas wholesale (every byte past the magic):
		// each read that tries that node first fails its checksum and must
		// fail over to a surviving replica.
		trashed := false
		for _, seg := range segmentFiles(t, dir) {
			if filepath.Base(filepath.Dir(seg)) != "n1" {
				continue
			}
			fi, err := os.Stat(seg)
			if err != nil {
				t.Fatal(err)
			}
			if fi.Size() <= 8 {
				continue
			}
			junk := bytes.Repeat([]byte{0xFF}, int(fi.Size()-8))
			f, err := os.OpenFile(seg, os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteAt(junk, 8); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
			trashed = true
		}
		if !trashed {
			t.Fatal("node n1 held no segment data to corrupt")
		}
		spill := t.TempDir()
		res := runEngine(t, Config{NumReducers: 3, TempDir: spill}, w, faultDataset(st, su))
		if !bytes.Equal(baseline, resultBytes(t, res)) {
			t.Fatal("answer after bit-flip failover not byte-identical to baseline")
		}
		if st.Stats().ChecksumFailovers == 0 {
			t.Fatal("no checksum failovers recorded — corruption was never exercised")
		}
		assertEmptyDir(t, "bit-flip", spill)
	})

	t.Run("replica-loss-mid-scan", func(t *testing.T) {
		dir := t.TempDir()
		st := openFaultStore(t, dir, records, su)
		defer st.Close()
		// The first map attempt takes a node down and dies with it; the
		// re-executed attempt must read every block from the survivors.
		var once sync.Once
		fired := false
		cfg := Config{
			NumReducers: 3,
			TempDir:     t.TempDir(),
			FailureInjector: func(task string, attempt int) error {
				var err error
				once.Do(func() {
					st.FailNode(2)
					fired = true
					err = fmt.Errorf("injected: node 2 lost during %s", task)
				})
				return err
			},
		}
		spill := cfg.TempDir
		res := runEngine(t, cfg, w, faultDataset(st, su))
		if !fired {
			t.Fatal("injector never fired")
		}
		if !bytes.Equal(baseline, resultBytes(t, res)) {
			t.Fatal("answer after replica loss mid-scan not byte-identical to baseline")
		}
		assertEmptyDir(t, "replica-loss", spill)
	})

	t.Run("crash-before-commit", func(t *testing.T) {
		dir := t.TempDir()
		st := openFaultStore(t, dir, records, su)
		defer st.Close()
		ds := faultDataset(st, su)

		// First process: a streaming run fills per-block cache entries but
		// crashes (here: closes) before any manifest commit.
		rc1, err := blockstore.NewResultCache(st, 0)
		if err != nil {
			t.Fatal(err)
		}
		eng1, err := NewEngine(Config{NumReducers: 3, TempDir: t.TempDir(), ResultCache: rc1})
		if err != nil {
			t.Fatal(err)
		}
		str, err := eng1.EvaluateStream(context.Background(), w, ds)
		if err != nil {
			t.Fatal(err)
		}
		for {
			_, ok, err := str.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
		}
		if err := str.Close(); err != nil {
			t.Fatal(err)
		}
		rc1.Close()

		// Second process: the reloaded cache has entries but no manifest,
		// so the run is not manifest-served — it re-reduces from per-block
		// hits and must still match the baseline exactly.
		rc2, err := blockstore.NewResultCache(st, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer rc2.Close()
		if rc2.Stats().Manifests != 0 {
			t.Fatal("a manifest survived the crash window")
		}
		spill := t.TempDir()
		res := runEngine(t, Config{NumReducers: 3, TempDir: spill, ResultCache: rc2}, w, ds)
		if res.ResultReused {
			t.Fatal("manifest-served run without a committed manifest")
		}
		hits, misses, _ := sumReduce(res)
		if hits == 0 || misses != 0 {
			t.Fatalf("recovered cache: hits=%d misses=%d, want all hits", hits, misses)
		}
		if !bytes.Equal(baseline, resultBytes(t, res)) {
			t.Fatal("answer after crash-before-commit not byte-identical to baseline")
		}
		assertEmptyDir(t, "crash-before-commit", spill)

		// The completed run committed its manifest; the next one is served
		// without touching the input at all.
		res2 := runEngine(t, Config{NumReducers: 3, TempDir: t.TempDir(), ResultCache: rc2}, w, ds)
		if !res2.ResultReused {
			t.Fatal("manifest committed by the recovered run was not used")
		}
		if !bytes.Equal(baseline, resultBytes(t, res2)) {
			t.Fatal("manifest-served answer not byte-identical to baseline")
		}
	})
}

func faultStoreConfig(dir string) blockstore.Config {
	return blockstore.Config{Dir: dir, BlockSize: 4096, Replication: 3, NumNodes: 4, Seed: 11}
}

func openFaultStore(t *testing.T, dir string, records []cube.Record, su *workload.Suite) *blockstore.Store {
	t.Helper()
	st, err := blockstore.Open(faultStoreConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.WriteStore(st, "data", su.Schema, records); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	return st
}

func faultDataset(st *blockstore.Store, su *workload.Suite) *Dataset {
	info, err := st.FileInfo("data")
	if err != nil {
		panic(err)
	}
	return &Dataset{
		Schema:     su.Schema,
		Input:      mr.NewStoreInput(st, "data"),
		NumRecords: info.Records,
		Tag:        "store:data",
	}
}

func segmentFiles(t *testing.T, dir string) []string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "n*", "*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 {
		t.Fatal("no segment files found")
	}
	return segs
}

func assertEmptyDir(t *testing.T, label, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("%s: spill dir not empty after run: %v", label, names)
	}
}
