package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"github.com/casm-project/casm/internal/blockstore"
	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/mr"
	"github.com/casm-project/casm/internal/optimizer"
	"github.com/casm-project/casm/internal/workflow"
)

// Result reuse materializes each block's reducer output — the rows that
// survived the ownership filter — in Config.ResultCache, keyed by
// (dataset identity × measure fingerprint × block key). The invalidation
// rule is entirely structural: the dataset identity is (Tag, NumRecords),
// so re-ingesting a file under the same tag changes the cardinality and
// thereby the key, and the measure fingerprint is the canonical workflow
// fingerprint, so any structural change to the workflow misses cleanly.
// Nothing is ever patched in place; stale entries age out of the LRU.
//
// Cached rows carry canonical measure *indices*, not names
// (workflow.CanonicalMeasures order). Two structurally identical
// workflows share a fingerprint even when their measures are named
// differently; storing indices lets either workflow's run fill the cache
// and the other reuse it, each mapping the rows back to its own names.
//
// A committed manifest (ResultCache.Commit) additionally records the
// complete set of block entries one (query plan, dataset, workflow)
// evaluation touched; a repeated identical query then assembles its
// whole answer from the manifest without starting a job — zero input
// bytes scanned. Manifests are only committed by runs that completed
// every reduce group, so a partially filled cache (crash between entry
// writes and commit, streaming consumers that stop early) degrades to
// per-block reuse, never to a wrong answer.

// resultReuse is one run's reuse session: the probe prefix, the
// canonical measure mapping, and the set of entry keys the run touched.
type resultReuse struct {
	rc       *blockstore.ResultCache
	prefix   []byte // entry-key prefix: dataset tag × fingerprint × cardinality
	queryKey string // manifest key: prefix facts × plan key
	canon    []*workflow.Measure
	canonIdx map[string]int // measure name → canonical index

	mu         sync.Mutex
	entries    map[string]struct{} // entry keys touched (hit or filled)
	incomplete bool                // a group neither hit nor filled; never commit
}

// newResultReuse returns the run's reuse session, or nil when reuse does
// not apply (no cache, early-stopped pipeline, anonymous dataset,
// unknown cardinality, or a workflow the canonicalizer rejects — the
// evaluator would reject it too, so failing open is safe).
func (e *Engine) newResultReuse(w *workflow.Workflow, ds *Dataset, plan optimizer.Plan) *resultReuse {
	rc := e.cfg.ResultCache
	if rc == nil || e.cfg.Stage != StageFull || ds.Tag == "" || ds.NumRecords <= 0 {
		return nil
	}
	fp, err := workflow.Fingerprint(w)
	if err != nil {
		return nil
	}
	canon, err := workflow.CanonicalMeasures(w)
	if err != nil {
		return nil
	}
	idx := make(map[string]int, len(canon))
	for i, m := range canon {
		idx[m.Name] = i
	}
	// The plan participates in the manifest key (different plans cut
	// different blocks, so their entry sets differ) but not in the entry
	// keys themselves: a block key already encodes the plan's block
	// geometry, so entries are shared wherever plans happen to agree.
	planKey := fmt.Sprintf("%s|cf=%d", plan.Key.Format(ds.Schema), plan.ClusteringFactor)
	return &resultReuse{
		rc:       rc,
		prefix:   blockstore.AppendEntryKeyPrefix(nil, ds.Tag, fp, ds.NumRecords),
		queryKey: blockstore.QueryKey(ds.Tag, fp, ds.NumRecords, planKey),
		canon:    canon,
		canonIdx: idx,
		entries:  make(map[string]struct{}),
	}
}

// note records that this run touched an entry (served from it or wrote
// it), making it part of the manifest committed on success.
func (ru *resultReuse) note(key []byte) {
	ru.mu.Lock()
	ru.entries[string(key)] = struct{}{}
	ru.mu.Unlock()
}

// markIncomplete poisons the manifest: some group's rows are neither
// cached nor freshly captured, so committing would record a partial
// answer as complete.
func (ru *resultReuse) markIncomplete() {
	ru.mu.Lock()
	ru.incomplete = true
	ru.mu.Unlock()
}

// commit publishes the manifest after a fully drained, successful run.
func (ru *resultReuse) commit() {
	ru.mu.Lock()
	keys := make([]string, 0, len(ru.entries))
	for k := range ru.entries {
		keys = append(keys, k)
	}
	bad := ru.incomplete
	ru.mu.Unlock()
	if bad || len(keys) == 0 {
		return
	}
	sort.Strings(keys)
	ru.rc.Commit(ru.queryKey, keys)
}

// emitCached replays a block's cached rows through the reducer's output
// path, mapping canonical measure indices back to this workflow's
// interned names. The emitted rows are byte-identical to what a fresh
// evaluation of the block would have produced.
func (ru *resultReuse) emitCached(ctx *mr.ReduceCtx, rl *reduceLocal, rows []byte) error {
	for off := 0; off < len(rows); {
		idx, payload, next, err := readCachedRow(rows, off)
		if err != nil {
			return err
		}
		if idx >= len(ru.canon) {
			return fmt.Errorf("core: cached row references measure %d of %d", idx, len(ru.canon))
		}
		name := ru.canon[idx].Name
		kb, ok := rl.names[name]
		if !ok {
			kb = []byte(name)
			rl.names[name] = kb
		}
		ctx.EmitStable(kb, append([]byte(nil), payload...))
		off = next
	}
	return nil
}

// resultFromCache assembles the whole answer from a committed manifest,
// bypassing the job entirely. Any gap — manifest missing, an entry
// evicted since commit, a row that fails to decode — falls back to
// running the job; reuse can be slow-pathed, never wrong.
func (e *Engine) resultFromCache(w *workflow.Workflow, ds *Dataset, ru *resultReuse, outcome PlanOutcome) (*Result, bool) {
	keys, ok := ru.rc.Manifest(ru.queryKey)
	if !ok {
		return nil, false
	}
	out := &Result{
		Measures:      make(map[string][]MeasureRecord, len(w.Measures())),
		Plan:          outcome.Plan,
		SampledPlan:   outcome.Sampled,
		SampleSeconds: outcome.SampleSeconds,
		PlanCached:    outcome.DecisionCached,
		ResultReused:  true,
	}
	arity := ds.Schema.NumAttrs()
	var hits, served int64
	for _, k := range keys {
		rows, ok := ru.rc.Get([]byte(k))
		if !ok {
			return nil, false
		}
		hits++
		served += int64(len(rows))
		for off := 0; off < len(rows); {
			idx, payload, next, err := readCachedRow(rows, off)
			if err != nil || idx >= len(ru.canon) {
				return nil, false
			}
			m := ru.canon[idx]
			coords, v, err := decodeMeasureRecord(payload, arity)
			if err != nil {
				return nil, false
			}
			out.Measures[m.Name] = append(out.Measures[m.Name], MeasureRecord{
				Region: cube.Region{Grain: m.Grain, Coord: coords},
				Value:  v,
			})
			off = next
		}
	}
	// Same canonical output order as the job path (RunWithPlanContext),
	// so the reused result is byte-identical to the one it replays.
	var ea, eb []byte
	for name := range out.Measures {
		ms := out.Measures[name]
		sort.Slice(ms, func(i, j int) bool {
			ea = cube.AppendCoords(ea[:0], ms[i].Region.Coord)
			eb = cube.AppendCoords(eb[:0], ms[j].Region.Coord)
			return bytes.Compare(ea, eb) < 0
		})
	}
	// The run's stats are one synthetic reduce task whose only non-zero
	// counters are the reuse ones — all priced at zero, so the simulated
	// time is a single task overhead: the cost of answering from cache.
	out.Stats = mr.JobStats{ReduceTasks: []mr.TaskStats{{
		Task:             "reduce-cache",
		ResultCacheHits:  hits,
		ResultCacheBytes: served,
	}}}
	out.Estimate = EstimateFromStats(e.cfg.Cluster, out.Stats)
	out.Estimate.ReduceSeconds += outcome.SampleSeconds
	return out, true
}

// --- cached-row codec ---

// A cached block entry is a sequence of rows, each
//
//	uvarint canonical measure index | uvarint payload length | payload
//
// where the payload is the same packed <region coordinates, value>
// encoding the shuffle carries (appendMeasureRecord).

func appendCachedRow(dst []byte, canonIdx int, payload []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(canonIdx))
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	return append(dst, payload...)
}

func readCachedRow(rows []byte, off int) (idx int, payload []byte, next int, err error) {
	u, n := binary.Uvarint(rows[off:])
	if n <= 0 {
		return 0, nil, 0, fmt.Errorf("core: corrupt cached row index")
	}
	off += n
	l, n := binary.Uvarint(rows[off:])
	if n <= 0 || uint64(len(rows)-off-n) < l {
		return 0, nil, 0, fmt.Errorf("core: corrupt cached row payload")
	}
	off += n
	return int(u), rows[off : off+int(l)], off + int(l), nil
}
