package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/mr"
	"github.com/casm-project/casm/internal/recio"
	"github.com/casm-project/casm/internal/workflow"
)

// RunComponentAtATime evaluates the workflow with the naive strategy the
// paper's introduction argues against: every measure component gets its
// own MapReduce job, respecting the dependency order — basic measures
// repartition the raw data (once per component), composite measures run
// parallel joins over the intermediate results, and sliding windows
// redistribute source results with overlap. The engine's single-job plan
// should beat this by a wide margin whenever several components share a
// feasible redistribution.
//
// The result is identical to Run's; Stats and Estimate accumulate over
// all jobs (jobs execute sequentially, as the step-by-step plan implies).
// It runs under context.Background(); see RunComponentAtATimeContext.
func (e *Engine) RunComponentAtATime(w *workflow.Workflow, ds *Dataset) (*Result, error) {
	return e.RunComponentAtATimeContext(context.Background(), w, ds)
}

// RunComponentAtATimeContext is the context-aware form of
// RunComponentAtATime: each component job runs on Config.Executor's
// shared pool under ctx, and cancellation aborts the remaining job
// sequence with an error satisfying errors.Is(err, context.Canceled).
func (e *Engine) RunComponentAtATimeContext(ctx context.Context, w *workflow.Workflow, ds *Dataset) (*Result, error) {
	s := ds.Schema
	order, err := w.TopoOrder()
	if err != nil {
		return nil, err
	}

	out := &Result{Measures: make(map[string][]MeasureRecord, len(order))}
	addStats := func(js mr.JobStats) {
		out.Stats.MapTasks = append(out.Stats.MapTasks, js.MapTasks...)
		out.Stats.ReduceTasks = append(out.Stats.ReduceTasks, js.ReduceTasks...)
		out.Stats.Shuffled += js.Shuffled
		out.Stats.Wall += js.Wall
		est := EstimateFromStats(e.cfg.Cluster, js)
		out.Estimate.MapSeconds += est.MapSeconds
		out.Estimate.ReduceSeconds += est.ReduceSeconds
	}

	// Occupancy (the list of occupied regions at a grain) is needed as the
	// candidate set for self, inherit, and sliding components; the naive
	// plan obtains it with one extra grouping job per distinct grain.
	occupancy := map[string][][]int64{} // grain key -> coords list
	needOcc := map[string]cube.Grain{}
	for _, m := range order {
		if m.Kind == workflow.Self || m.Kind == workflow.Inherit || m.Kind == workflow.Sliding {
			needOcc[grainKeyOf(m.Grain)] = m.Grain
		}
	}
	for gk, g := range needOcc {
		coords, js, err := e.occupancyJob(ctx, ds, g)
		if err != nil {
			return nil, fmt.Errorf("core: occupancy job for %s: %w", s.FormatGrain(g), err)
		}
		occupancy[gk] = coords
		addStats(js)
	}

	// Intermediate results per measure: region coords (at the measure's
	// grain) and value.
	type row = struct {
		coords []int64
		value  float64
	}
	values := map[string][]row{}

	for _, m := range order {
		var rows []row
		var js mr.JobStats
		switch m.Kind {
		case workflow.Basic:
			rows, js, err = e.basicJob(ctx, ds, m)
		case workflow.Rollup:
			rows, js, err = e.rollupJob(ctx, w, m, values[m.Sources[0]])
		case workflow.Self, workflow.Inherit:
			srcRows := make([][]row, len(m.Sources))
			for i, src := range m.Sources {
				srcRows[i] = values[src]
			}
			rows, js, err = e.joinJob(ctx, w, m, srcRows, occupancy[grainKeyOf(m.Grain)])
		case workflow.Sliding:
			rows, js, err = e.slidingJob(ctx, s, m, values[m.Sources[0]], occupancy[grainKeyOf(m.Grain)])
		default:
			return nil, fmt.Errorf("core: baseline: unknown kind %v", m.Kind)
		}
		if err != nil {
			return nil, fmt.Errorf("core: baseline job for %q: %w", m.Name, err)
		}
		addStats(js)
		values[m.Name] = rows
		records := make([]MeasureRecord, len(rows))
		for i, r := range rows {
			records[i] = MeasureRecord{Region: cube.Region{Grain: m.Grain, Coord: r.coords}, Value: r.value}
		}
		sort.Slice(records, func(i, j int) bool {
			return cube.EncodeCoords(records[i].Region.Coord) < cube.EncodeCoords(records[j].Region.Coord)
		})
		out.Measures[m.Name] = records
	}
	return out, nil

}

func grainKeyOf(g cube.Grain) string {
	b := make([]byte, len(g))
	for i, l := range g {
		b[i] = byte(l)
	}
	return string(b)
}

// runRowsJob executes one MapReduce job and decodes its output rows.
func (e *Engine) runRowsJob(ctx context.Context, input mr.Input, mapFn mr.MapFunc, reduceFn mr.ReduceFunc, arity int) ([]struct {
	coords []int64
	value  float64
}, mr.JobStats, error) {
	res, err := mr.RunContext(ctx, mr.Job{
		Input:  input,
		Map:    mapFn,
		Reduce: reduceFn,
		Config: mr.Config{
			NumReducers:       e.cfg.NumReducers,
			Executor:          e.cfg.Executor,
			MapParallelism:    e.cfg.MapParallelism,
			ReduceParallelism: e.cfg.ReduceParallelism,
			Transport:         e.cfg.Transport,
			MorselBytes:       e.cfg.MorselBytes,
			LocalAggBudget:    e.cfg.LocalAggBudget,
			SortMemoryItems:   e.cfg.SortMemoryItems,
			TempDir:           e.cfg.TempDir,
		},
	})
	if err != nil {
		return nil, mr.JobStats{}, err
	}
	rows := make([]struct {
		coords []int64
		value  float64
	}, len(res.Output))
	for i, p := range res.Output {
		coords, v, err := decodeMeasureRecord(p.Value, arity)
		if err != nil {
			return nil, mr.JobStats{}, err
		}
		rows[i].coords = coords
		rows[i].value = v
	}
	return rows, res.Stats, nil
}

// occupancyJob lists the occupied regions of a grain.
func (e *Engine) occupancyJob(ctx context.Context, ds *Dataset, g cube.Grain) ([][]int64, mr.JobStats, error) {
	s := ds.Schema
	arity := s.NumAttrs()
	mapFn := func(ctx *mr.MapCtx, raw []byte) error {
		rec := getRecordBuf(arity)
		defer putRecordBuf(rec)
		if err := recio.DecodeRecordInto(raw, rec); err != nil {
			return err
		}
		coord := make([]int64, arity)
		s.CoordOf(rec, g, coord)
		return ctx.Emit(cube.AppendCoords(nil, coord), nil)
	}
	reduceFn := func(ctx *mr.ReduceCtx, key []byte, values *mr.GroupIter) error {
		if err := values.Drain(); err != nil {
			return err
		}
		coords, err := cube.DecodeCoords(string(key), arity)
		if err != nil {
			return err
		}
		ctx.EmitStable(occKey, encodeMeasureRecord(coords, 0))
		return nil
	}
	rows, js, err := e.runRowsJob(ctx, ds.Input, mapFn, reduceFn, arity)
	if err != nil {
		return nil, js, err
	}
	coords := make([][]int64, len(rows))
	for i, r := range rows {
		coords[i] = r.coords
	}
	return coords, js, nil
}

// basicJob repartitions the raw data by the measure's grain and
// aggregates each group (the intro's Steps 1–2 for one component).
func (e *Engine) basicJob(ctx context.Context, ds *Dataset, m *workflow.Measure) ([]struct {
	coords []int64
	value  float64
}, mr.JobStats, error) {
	s := ds.Schema
	arity := s.NumAttrs()
	nameKey := []byte(m.Name) // job-stable: one allocation shared by every output pair
	mapFn := func(ctx *mr.MapCtx, raw []byte) error {
		rec := getRecordBuf(arity)
		defer putRecordBuf(rec)
		if err := recio.DecodeRecordInto(raw, rec); err != nil {
			return err
		}
		coord := make([]int64, arity)
		s.CoordOf(rec, m.Grain, coord)
		var v float64
		if m.InputAttr >= 0 {
			v = float64(rec[m.InputAttr])
		}
		return ctx.Emit(cube.AppendCoords(nil, coord), encodeFloat(v))
	}
	reduceFn := func(ctx *mr.ReduceCtx, key []byte, values *mr.GroupIter) error {
		agg := m.Agg.New()
		for {
			p, ok, err := values.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			ctx.Stats.EvalRecords++
			agg.Add(decodeFloat(p.Value))
		}
		v := agg.Result()
		if math.IsNaN(v) {
			return nil
		}
		coords, err := cube.DecodeCoords(string(key), arity)
		if err != nil {
			return err
		}
		ctx.EmitStable(nameKey, encodeMeasureRecord(coords, v))
		return nil
	}
	return e.runRowsJob(ctx, ds.Input, mapFn, reduceFn, arity)
}

// rowsInput wraps intermediate rows as a MapReduce input.
func rowsInput(rows []struct {
	coords []int64
	value  float64
}, tag byte) [][]byte {
	out := make([][]byte, len(rows))
	for i, r := range rows {
		out[i] = append([]byte{tag}, encodeMeasureRecord(r.coords, r.value)...)
	}
	return out
}

func occInput(coords [][]int64, tag byte) [][]byte {
	out := make([][]byte, len(coords))
	for i, c := range coords {
		out[i] = append([]byte{tag}, encodeMeasureRecord(c, 0)...)
	}
	return out
}

const occTag = 0xFF

// occKey is the job-stable output key of occupancy jobs (EmitStable needs
// key bytes that outlive the job; a package-level slice trivially does).
var occKey = []byte("occ")

// joinJob evaluates a self or inherit measure: source results and the
// target grain's occupancy are co-partitioned on the LCA of their grains
// and joined reducer-side (the intro's Step 3).
func (e *Engine) joinJob(ctx context.Context, w *workflow.Workflow, m *workflow.Measure, srcRows [][]struct {
	coords []int64
	value  float64
}, occ [][]int64) ([]struct {
	coords []int64
	value  float64
}, mr.JobStats, error) {
	s := w.Schema()
	arity := s.NumAttrs()
	srcs := make([]*workflow.Measure, len(m.Sources))
	grains := []cube.Grain{m.Grain}
	for i, name := range m.Sources {
		sm, _ := w.Measure(name)
		srcs[i] = sm
		grains = append(grains, sm.Grain)
	}
	join := s.LCA(grains...)
	nameKey := []byte(m.Name)

	var input [][]byte
	for i, rows := range srcRows {
		input = append(input, rowsInput(rows, byte(i))...)
	}
	input = append(input, occInput(occ, occTag)...)

	mapFn := func(ctx *mr.MapCtx, raw []byte) error {
		tag := raw[0]
		coords, v, err := decodeMeasureRecord(raw[1:], arity)
		if err != nil {
			return err
		}
		var from cube.Grain
		if tag == occTag {
			from = m.Grain
		} else {
			from = srcs[tag].Grain
		}
		jc := make([]int64, arity)
		for i := range jc {
			jc[i] = s.Attr(i).RollBetween(coords[i], from[i], join[i])
		}
		return ctx.Emit(cube.AppendCoords(nil, jc), append([]byte{tag}, encodeMeasureRecord(coords, v)...))
	}
	reduceFn := func(ctx *mr.ReduceCtx, key []byte, values *mr.GroupIter) error {
		perSrc := make([]map[string]float64, len(srcs))
		for i := range perSrc {
			perSrc[i] = map[string]float64{}
		}
		var candidates [][]int64
		for {
			p, ok, err := values.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			ctx.Stats.EvalRecords++
			tag := p.Value[0]
			coords, v, err := decodeMeasureRecord(p.Value[1:], arity)
			if err != nil {
				return err
			}
			if tag == occTag {
				candidates = append(candidates, coords)
			} else {
				perSrc[tag][cube.EncodeCoords(coords)] = v
			}
		}
		args := make([]float64, len(srcs))
		buf := make([]int64, arity)
		for _, c := range candidates {
			for i, sm := range srcs {
				for j := range c {
					buf[j] = s.Attr(j).RollBetween(c[j], m.Grain[j], sm.Grain[j])
				}
				v, ok := perSrc[i][cube.EncodeCoords(buf)]
				if !ok {
					v = math.NaN()
				}
				args[i] = v
			}
			if v := m.Expr.Eval(args); !math.IsNaN(v) {
				ctx.EmitStable(nameKey, encodeMeasureRecord(c, v))
			}
		}
		return nil
	}
	return e.runRowsJob(ctx, mr.NewMemoryInput(input, e.cfg.NumReducers*2), mapFn, reduceFn, arity)
}

// rollupJob repartitions the source results by the parent grain and
// aggregates each parent's children (child/parent relationship as its own
// job).
func (e *Engine) rollupJob(ctx context.Context, w *workflow.Workflow, m *workflow.Measure, srcRows []struct {
	coords []int64
	value  float64
}) ([]struct {
	coords []int64
	value  float64
}, mr.JobStats, error) {
	s := w.Schema()
	arity := s.NumAttrs()
	src, _ := w.Measure(m.Sources[0])
	nameKey := []byte(m.Name)
	input := rowsInput(srcRows, 0)
	mapFn := func(ctx *mr.MapCtx, raw []byte) error {
		coords, v, err := decodeMeasureRecord(raw[1:], arity)
		if err != nil {
			return err
		}
		parent := make([]int64, arity)
		for i := range parent {
			parent[i] = s.Attr(i).RollBetween(coords[i], src.Grain[i], m.Grain[i])
		}
		return ctx.Emit(cube.AppendCoords(nil, parent), encodeFloat(v))
	}
	reduceFn := func(ctx *mr.ReduceCtx, key []byte, values *mr.GroupIter) error {
		agg := m.Agg.New()
		for {
			p, ok, err := values.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			ctx.Stats.EvalRecords++
			agg.Add(decodeFloat(p.Value))
		}
		if v := agg.Result(); !math.IsNaN(v) {
			coords, err := cube.DecodeCoords(string(key), arity)
			if err != nil {
				return err
			}
			ctx.EmitStable(nameKey, encodeMeasureRecord(coords, v))
		}
		return nil
	}
	return e.runRowsJob(ctx, mr.NewMemoryInput(input, e.cfg.NumReducers*2), mapFn, reduceFn, arity)
}

// slidingJob redistributes source results with overlap: each source value
// is sent to every window (target region) it participates in, and each
// occupied target aggregates what it received — the per-component version
// of overlapping redistribution.
func (e *Engine) slidingJob(ctx context.Context, s *cube.Schema, m *workflow.Measure, srcRows []struct {
	coords []int64
	value  float64
}, occ [][]int64) ([]struct {
	coords []int64
	value  float64
}, mr.JobStats, error) {
	arity := s.NumAttrs()
	nameKey := []byte(m.Name)
	input := append(rowsInput(srcRows, 0), occInput(occ, occTag)...)
	mapFn := func(ctx *mr.MapCtx, raw []byte) error {
		tag := raw[0]
		coords, v, err := decodeMeasureRecord(raw[1:], arity)
		if err != nil {
			return err
		}
		if tag == occTag {
			return ctx.Emit(cube.AppendCoords(nil, coords), append([]byte{occTag}, encodeFloat(0)...))
		}
		// Enumerate the target regions whose window covers this source
		// region: per annotated attribute X with range (l, h), targets at
		// offsets -h … -l.
		target := append([]int64(nil), coords...)
		var emitErr error
		var walk func(i int)
		walk = func(i int) {
			if emitErr != nil {
				return
			}
			if i == len(m.Window) {
				emitErr = ctx.Emit(cube.AppendCoords(nil, target), append([]byte{0}, encodeFloat(v)...))
				return
			}
			ann := m.Window[i]
			card := s.Attr(ann.Attr).CardAt(m.Grain[ann.Attr])
			for off := -ann.High; off <= -ann.Low; off++ {
				c := coords[ann.Attr] + off
				if c < 0 || c >= card {
					continue
				}
				target[ann.Attr] = c
				walk(i + 1)
			}
			target[ann.Attr] = coords[ann.Attr]
		}
		walk(0)
		return emitErr
	}
	reduceFn := func(ctx *mr.ReduceCtx, key []byte, values *mr.GroupIter) error {
		agg := m.Agg.New()
		occupied := false
		for {
			p, ok, err := values.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			ctx.Stats.EvalRecords++
			if p.Value[0] == occTag {
				occupied = true
				continue
			}
			agg.Add(decodeFloat(p.Value[1:]))
		}
		if !occupied || agg.N() == 0 {
			return nil
		}
		if v := agg.Result(); !math.IsNaN(v) {
			coords, err := cube.DecodeCoords(string(key), arity)
			if err != nil {
				return err
			}
			ctx.EmitStable(nameKey, encodeMeasureRecord(coords, v))
		}
		return nil
	}
	return e.runRowsJob(ctx, mr.NewMemoryInput(input, e.cfg.NumReducers*2), mapFn, reduceFn, arity)
}

func encodeFloat(v float64) []byte {
	return encodeMeasureRecord(nil, v)
}

func decodeFloat(b []byte) float64 {
	_, v, _ := decodeMeasureRecord(b, 0)
	return v
}
