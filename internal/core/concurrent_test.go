package core

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"github.com/casm-project/casm/internal/exec"
	"github.com/casm-project/casm/internal/workload"
)

// TestConcurrentEvaluateSharedExecutor is the shared-runtime property: N
// EvaluateContext calls racing on ONE bounded executor must each produce
// exactly the sequential result. This exercises FIFO-fair admission
// across jobs, the per-job Limit, and the service-task path (each job's
// shuffle collectors must keep draining while the pool is saturated with
// other jobs' map tasks — with 8 jobs on 4 workers, any collector stuck
// waiting for a pool slot would deadlock the whole test).
func TestConcurrentEvaluateSharedExecutor(t *testing.T) {
	su := workload.NewSuite()
	records := su.Generate(2500, workload.Uniform, 17)
	ds := MemoryDataset(su.Schema, records, 6)
	w := su.Q5()
	want := oracle(t, w, records)

	ex := exec.New(4)
	defer ex.Close()
	eng, err := NewEngine(Config{NumReducers: 4, Executor: ex, TempDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}

	sequential, err := eng.EvaluateContext(context.Background(), w, ds)
	if err != nil {
		t.Fatal(err)
	}
	compare(t, "sequential", want, flatten(sequential))

	const jobs = 8
	results := make([]*Result, jobs)
	errs := make([]error, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = eng.EvaluateContext(context.Background(), w, ds)
		}()
	}
	wg.Wait()
	for i := 0; i < jobs; i++ {
		if errs[i] != nil {
			t.Fatalf("concurrent job %d: %v", i, errs[i])
		}
		compare(t, fmt.Sprintf("concurrent job %d", i), want, flatten(results[i]))
		assertSameMeasures(t, i, sequential, results[i])
	}
}

// assertSameMeasures checks record-for-record equality with the
// sequential run — concurrency must not even reorder the output, since
// the engine sorts each measure by region key.
func assertSameMeasures(t *testing.T, job int, want, got *Result) {
	t.Helper()
	if len(got.Measures) != len(want.Measures) {
		t.Fatalf("job %d: %d measures, want %d", job, len(got.Measures), len(want.Measures))
	}
	for name, wm := range want.Measures {
		gm := got.Measures[name]
		if len(gm) != len(wm) {
			t.Fatalf("job %d: measure %s: %d records, want %d", job, name, len(gm), len(wm))
		}
		for i := range wm {
			if gm[i].Value != wm[i].Value || gm[i].Region.Key() != wm[i].Region.Key() {
				t.Fatalf("job %d: measure %s: record %d differs from sequential", job, name, i)
			}
		}
	}
}
