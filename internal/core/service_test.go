package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/casm-project/casm/internal/exec"
	"github.com/casm-project/casm/internal/workflow"
	"github.com/casm-project/casm/internal/workload"
)

// settleGoroutines waits for the goroutine count to stop changing and
// returns it — the baseline for leak assertions.
func settleGoroutines(t *testing.T) int {
	t.Helper()
	last, stable := runtime.NumGoroutine(), 0
	for i := 0; i < 500 && stable < 10; i++ {
		time.Sleep(2 * time.Millisecond)
		if n := runtime.NumGoroutine(); n == last {
			stable++
		} else {
			last, stable = n, 0
		}
	}
	return last
}

// waitForGoroutines asserts the goroutine count returns to the baseline
// (teardown is asynchronous).
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			m := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s", n, baseline, buf[:m])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// openFDsInDir lists this process's open file descriptors resolving into
// dir.
func openFDsInDir(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("no /proc/self/fd: %v", err)
	}
	var got []string
	for _, e := range ents {
		target, err := os.Readlink(filepath.Join("/proc/self/fd", e.Name()))
		if err == nil && strings.HasPrefix(target, dir) {
			got = append(got, target)
		}
	}
	return got
}

func newTestService(t *testing.T, cfg ServiceConfig) *Service {
	t.Helper()
	if cfg.Engine.NumReducers == 0 {
		cfg.Engine.NumReducers = 4
	}
	if cfg.Engine.TempDir == "" {
		cfg.Engine.TempDir = t.TempDir()
	}
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// TestServiceMultiTenantConcurrent is the resident-service property: N
// tenants × M concurrent queries on one small shared pool must (a) honor
// each tenant's in-flight limit, (b) produce results byte-identical to
// sequential runs, and (c) serve repeated queries from the decision
// cache. Run under -race this also audits the admission/registry locking.
func TestServiceMultiTenantConcurrent(t *testing.T) {
	su := workload.NewSuite()
	records := su.Generate(2500, workload.Uniform, 17)
	svc := newTestService(t, ServiceConfig{
		Engine:            Config{NumReducers: 4},
		Workers:           4,
		PerTenantInFlight: 2,
	})
	defer svc.Drain(context.Background())
	if err := svc.Register("events", MemoryDataset(su.Schema, records, 6)); err != nil {
		t.Fatal(err)
	}

	queries := []int{1, 2, 5}
	wants := make([]*Result, len(queries))
	for qi, q := range queries {
		w, err := su.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := svc.Evaluate(context.Background(), "warmup", "events", w)
		if err != nil {
			t.Fatal(err)
		}
		wants[qi] = res
		compare(t, fmt.Sprintf("sequential Q%d", q), oracle(t, w, records), flatten(res))
	}

	const (
		tenants   = 3
		perTenant = 4 // concurrent submissions per tenant (limit is 2)
	)
	var wg sync.WaitGroup
	type run struct {
		res *Result
		tm  exec.Timing
		err error
		qi  int
	}
	runs := make([]run, tenants*perTenant)
	for ti := 0; ti < tenants; ti++ {
		tenant := fmt.Sprintf("tenant-%d", ti)
		for j := 0; j < perTenant; j++ {
			i := ti*perTenant + j
			qi := (ti + j) % len(queries)
			wg.Add(1)
			go func() {
				defer wg.Done()
				w, err := su.Query(queries[qi])
				if err != nil {
					runs[i].err = err
					return
				}
				res, tm, err := svc.Evaluate(context.Background(), tenant, "events", w)
				runs[i] = run{res: res, tm: tm, err: err, qi: qi}
			}()
		}
	}
	wg.Wait()

	for i, r := range runs {
		if r.err != nil {
			t.Fatalf("run %d: %v", i, r.err)
		}
		assertSameMeasures(t, i, wants[r.qi], r.res)
		if r.tm.Start.IsZero() || r.tm.Wall <= 0 {
			t.Fatalf("run %d: timing not stamped: %+v", i, r.tm)
		}
	}

	st := svc.Stats()
	if st.Admission.InFlight != 0 || st.Admission.Queued != 0 {
		t.Fatalf("service not idle: %+v", st.Admission)
	}
	for tenant, p := range st.Admission.TenantPeak {
		if p > 2 {
			t.Fatalf("tenant %s peak in-flight %d exceeds limit 2", tenant, p)
		}
	}
	// The warmup populated the cache; every concurrent run re-used a
	// decision instead of re-planning.
	if st.PlanCacheHits < int64(len(runs)) {
		t.Fatalf("plan cache hits = %d, want >= %d", st.PlanCacheHits, len(runs))
	}
	if st.Evaluations != int64(len(runs)+len(queries)) {
		t.Fatalf("evaluations = %d, want %d", st.Evaluations, len(runs)+len(queries))
	}
}

// TestServiceDecisionCacheSecondHit: the second submission of the same
// query must come back PlanCached with no planning (and, under
// SkewSampling, no re-sampling: SampleSeconds stays zero on the hit).
func TestServiceDecisionCacheSecondHit(t *testing.T) {
	su := workload.NewSuite()
	records := su.Generate(3000, workload.SkewedTime, 7)
	for _, mode := range []SkewMode{SkewNone, SkewSampling} {
		svc := newTestService(t, ServiceConfig{
			Engine: Config{NumReducers: 4, SkewMode: mode, SampleSize: 500},
		})
		if err := svc.Register("skewed", MemoryDataset(su.Schema, records, 6)); err != nil {
			t.Fatal(err)
		}
		w := su.Q1()
		first, _, err := svc.Evaluate(context.Background(), "t", "skewed", w)
		if err != nil {
			t.Fatal(err)
		}
		if first.PlanCached {
			t.Fatalf("mode %v: first run unexpectedly cache-hit", mode)
		}
		second, _, err := svc.Evaluate(context.Background(), "t", "skewed", w)
		if err != nil {
			t.Fatal(err)
		}
		if !second.PlanCached {
			t.Fatalf("mode %v: second run did not hit the decision cache", mode)
		}
		if second.SampleSeconds != 0 {
			t.Fatalf("mode %v: cached run re-sampled (SampleSeconds=%v)", mode, second.SampleSeconds)
		}
		assertSameMeasures(t, 0, first, second)
		if st := svc.Stats(); st.PlanCacheHits != 1 || st.PlanCacheMisses != 1 {
			t.Fatalf("mode %v: cache counters hits=%d misses=%d, want 1/1", mode, st.PlanCacheHits, st.PlanCacheMisses)
		}
		if err := svc.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}

// TestServiceDrain: drain lets running jobs finish, rejects late
// submissions with the typed error, and tears down leak-free — goroutines
// and spill-dir file descriptors return to the pre-service baseline.
func TestServiceDrain(t *testing.T) {
	su := workload.NewSuite()
	records := su.Generate(2000, workload.Uniform, 3)
	w := su.Q1()
	dir := t.TempDir()

	// Baseline before the service exists: its owned pool must die with it.
	baseline := settleGoroutines(t)

	svc := newTestService(t, ServiceConfig{
		Engine:  Config{NumReducers: 4, TempDir: dir},
		Workers: 4,
	})
	if err := svc.Register("events", MemoryDataset(su.Schema, records, 6)); err != nil {
		t.Fatal(err)
	}

	// Work racing the drain: the admitted jobs must complete successfully.
	const jobs = 3
	errs := make([]error, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, errs[i] = svc.Evaluate(context.Background(), fmt.Sprintf("t%d", i), "events", w)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}

	if err := svc.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !svc.Draining() {
		t.Fatal("Draining() = false after Drain")
	}
	if _, _, err := svc.Evaluate(context.Background(), "late", "events", w); !errors.Is(err, exec.ErrDraining) {
		t.Fatalf("post-drain Evaluate err = %v, want ErrDraining", err)
	}
	if _, err := svc.EvaluateStream(context.Background(), "late", "events", w); !errors.Is(err, exec.ErrDraining) {
		t.Fatalf("post-drain EvaluateStream err = %v, want ErrDraining", err)
	}
	// Idempotent.
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	waitForGoroutines(t, baseline)
	if ents, err := os.ReadDir(dir); err != nil || len(ents) != 0 {
		t.Fatalf("spill dir not empty after drain: %d entries, err=%v", len(ents), err)
	}
	if fds := openFDsInDir(t, dir); len(fds) != 0 {
		t.Fatalf("spill descriptors leaked: %v", fds)
	}
}

// TestServiceStreamHoldsAdmission: a streaming evaluation owns its
// tenant's admission slot until Close — a tenant at its limit via an open
// stream queues, and closing the stream releases the slot.
func TestServiceStreamHoldsAdmission(t *testing.T) {
	su := workload.NewSuite()
	records := su.Generate(1500, workload.Uniform, 5)
	svc := newTestService(t, ServiceConfig{
		Engine:            Config{NumReducers: 2},
		PerTenantInFlight: 1,
	})
	defer svc.Drain(context.Background())
	if err := svc.Register("events", MemoryDataset(su.Schema, records, 4)); err != nil {
		t.Fatal(err)
	}
	w := su.Q1()

	st, err := svc.EvaluateStream(context.Background(), "t", "events", w)
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	for {
		_, ok, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		rows++
	}
	if rows == 0 {
		t.Fatal("stream yielded no rows")
	}
	// Fully drained but not closed: the slot is still held.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	if _, _, err := svc.Evaluate(ctx, "t", "events", w); !errors.Is(err, context.DeadlineExceeded) {
		cancel()
		t.Fatalf("Evaluate while stream open: err = %v, want DeadlineExceeded", err)
	}
	cancel()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if tm := st.Timing(); tm.Start.IsZero() {
		t.Fatal("stream timing not stamped")
	}
	if _, _, err := svc.Evaluate(context.Background(), "t", "events", w); err != nil {
		t.Fatalf("Evaluate after stream close: %v", err)
	}
	// Double close stays idempotent.
	if err := st.Close(); err != nil {
		t.Fatalf("second stream Close: %v", err)
	}
}

// TestServiceRegistry: unknown datasets fail with the typed error,
// duplicate registration is rejected, and registration settles identity
// (cardinality counted once, tag stamped).
func TestServiceRegistry(t *testing.T) {
	su := workload.NewSuite()
	svc := newTestService(t, ServiceConfig{Engine: Config{NumReducers: 2}})
	defer svc.Drain(context.Background())

	if _, _, err := svc.Evaluate(context.Background(), "t", "nope", su.Q1()); !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("unknown dataset err = %v, want ErrUnknownDataset", err)
	}
	records := su.Generate(500, workload.Uniform, 1)
	ds := MemoryDataset(su.Schema, records, 4)
	ds.NumRecords = 0 // force the registration-time count
	if err := svc.Register("events", ds); err != nil {
		t.Fatal(err)
	}
	if err := svc.Register("events", MemoryDataset(su.Schema, records, 4)); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	got, err := svc.Dataset("events")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRecords != int64(len(records)) {
		t.Fatalf("registered cardinality = %d, want %d", got.NumRecords, len(records))
	}
	if got.Tag != "svc:events" {
		t.Fatalf("registered tag = %q, want %q", got.Tag, "svc:events")
	}
	if names := svc.Datasets(); len(names) != 1 || names[0] != "events" {
		t.Fatalf("Datasets() = %v", names)
	}
}

// TestServiceBatch: batch submissions run under one admission slot and
// their per-query results match individual evaluations.
func TestServiceBatch(t *testing.T) {
	su := workload.NewSuite()
	records := su.Generate(2000, workload.Uniform, 11)
	svc := newTestService(t, ServiceConfig{Engine: Config{NumReducers: 4}})
	defer svc.Drain(context.Background())
	if err := svc.Register("events", MemoryDataset(su.Schema, records, 6)); err != nil {
		t.Fatal(err)
	}
	var ws []*workflow.Workflow
	for _, q := range []int{1, 2} {
		w, err := su.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w)
	}
	res, tm, err := svc.EvaluateBatch(context.Background(), "t", "events", ws)
	if err != nil {
		t.Fatal(err)
	}
	if tm.Start.IsZero() || tm.Wall <= 0 {
		t.Fatalf("batch timing not stamped: %+v", tm)
	}
	if len(res.Results) != len(ws) {
		t.Fatalf("batch returned %d results, want %d", len(res.Results), len(ws))
	}
	for i, w := range ws {
		seq, _, err := svc.Evaluate(context.Background(), "t", "events", w)
		if err != nil {
			t.Fatal(err)
		}
		assertSameMeasures(t, i, seq, res.Results[i])
	}
	if st := svc.Stats(); st.Evaluations != int64(len(ws)*2) {
		t.Fatalf("evaluations = %d, want %d", st.Evaluations, len(ws)*2)
	}
}
