package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"github.com/casm-project/casm/internal/costmodel"
	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/distkey"
	"github.com/casm-project/casm/internal/localeval"
	"github.com/casm-project/casm/internal/measure"
	"github.com/casm-project/casm/internal/mr"
	"github.com/casm-project/casm/internal/optimizer"
	"github.com/casm-project/casm/internal/recio"
	"github.com/casm-project/casm/internal/stats"
	"github.com/casm-project/casm/internal/transport"
	"github.com/casm-project/casm/internal/workflow"
)

// PlanOutcome carries the plan chosen for a run and how it was found.
type PlanOutcome struct {
	Plan          optimizer.Plan
	Sampled       bool
	FromCache     bool
	SampleSeconds float64
	// DecisionCached indicates the complete decision (not just a key/cf
	// hint) came from Config.DecisionCache; no planning work ran at all.
	DecisionCached bool
}

// Plan chooses the execution plan under context.Background(); see
// PlanContext.
func (e *Engine) Plan(w *workflow.Workflow, ds *Dataset) (PlanOutcome, error) {
	return e.PlanContext(context.Background(), w, ds)
}

// PlanContext chooses the execution plan for the workflow over the
// dataset, applying the plan cache, the cost-model optimizer, forced
// overrides, and (optionally) sampling-based skew handling, in that
// order. Planning runs inline on the caller's goroutine; ctx bounds the
// dataset scans (cardinality counting, skew sampling) it may perform.
func (e *Engine) PlanContext(ctx context.Context, w *workflow.Workflow, ds *Dataset) (PlanOutcome, error) {
	if err := ctx.Err(); err != nil {
		return PlanOutcome{}, err
	}
	n := ds.NumRecords
	if n == 0 {
		counted, err := CountRecords(ds)
		if err != nil {
			return PlanOutcome{}, err
		}
		if counted == 0 {
			counted = 1
		}
		n = counted
	}
	optCfg := optimizer.Config{
		NumReducers:         e.cfg.NumReducers,
		TotalRecords:        n,
		MinBlocksPerReducer: e.cfg.MinBlocksPerReducer,
	}

	// The decision cache short-circuits everything below it: a hit hands
	// back the complete prior decision (including a sampling-based one)
	// keyed by the canonical workflow fingerprint, the dataset identity,
	// and every knob that can change the outcome. Forced overrides bypass
	// it — they are the caller insisting the optimizer's decision not be
	// used, cached or otherwise.
	decide := e.cfg.DecisionCache != nil && e.cfg.ForceKey == nil && e.cfg.ForceCF == 0
	var decisionKey string
	if decide {
		fp, err := workflow.Fingerprint(w)
		if err != nil {
			return PlanOutcome{}, err
		}
		decisionKey = optimizer.DecisionKey(fp, ds.Tag, n, optCfg,
			int(e.cfg.SkewMode), e.cfg.SampleSize, e.cfg.Seed)
		if plan, sampled, ok := e.cfg.DecisionCache.Get(decisionKey); ok {
			return PlanOutcome{Plan: plan, Sampled: sampled, FromCache: true, DecisionCached: true}, nil
		}
	}

	if e.cfg.Cache != nil && e.cfg.ForceKey == nil {
		minimal, _, err := distkey.Derive(w)
		if err != nil {
			return PlanOutcome{}, err
		}
		if key, cf, ok := e.cfg.Cache.Lookup(ds.Schema, minimal); ok {
			cand, err := optimizer.ScoreKey(ds.Schema, key, optCfg)
			if err != nil {
				return PlanOutcome{}, err
			}
			return PlanOutcome{
				Plan: optimizer.Plan{
					Key: key, ClusteringFactor: cf,
					PredictedWorkload: cand.Workload, Blocks: cand.Blocks,
					Candidates: []optimizer.Candidate{cand},
				},
				FromCache: true,
			}, nil
		}
	}

	plan, err := optimizer.Optimize(w, optCfg)
	if err != nil {
		return PlanOutcome{}, err
	}

	if e.cfg.ForceKey != nil {
		cand, err := optimizer.ScoreKey(ds.Schema, *e.cfg.ForceKey, optCfg)
		if err != nil {
			return PlanOutcome{}, err
		}
		plan = optimizer.Plan{
			Key: *e.cfg.ForceKey, ClusteringFactor: cand.ClusteringFactor,
			PredictedWorkload: cand.Workload, Blocks: cand.Blocks,
			Candidates: []optimizer.Candidate{cand},
		}
	}
	if e.cfg.ForceCF > 0 {
		if !plan.Key.IsOverlapping() && e.cfg.ForceCF != 1 {
			return PlanOutcome{}, fmt.Errorf("core: ForceCF %d needs an overlapping key", e.cfg.ForceCF)
		}
		plan.ClusteringFactor = e.cfg.ForceCF
		plan.PredictedWorkload = optimizer.PredictWorkload(ds.Schema, plan.Key, e.cfg.ForceCF, optCfg)
	}

	out := PlanOutcome{Plan: plan}
	if e.cfg.SkewMode == SkewSampling && e.cfg.ForceKey == nil && e.cfg.ForceCF == 0 {
		if err := ctx.Err(); err != nil {
			return PlanOutcome{}, err
		}
		sample, bytesRead, err := sampleDataset(ds, e.cfg.SampleSize, e.cfg.Seed)
		if err != nil {
			return PlanOutcome{}, err
		}
		choice, err := optimizer.ChooseBySampling(ds.Schema, plan, sample, e.cfg.NumReducers, nil)
		if err != nil {
			return PlanOutcome{}, err
		}
		out.Plan = choice.Plan
		out.Sampled = true
		m := e.cfg.Cluster.Machine
		out.SampleSeconds = float64(bytesRead)/(m.DiskMBps*(1<<20)) +
			float64(len(plan.Candidates)*len(sample))*m.MapSecPerRecord + 2*m.TaskOverheadSec
	}
	if e.cfg.Cache != nil {
		e.cfg.Cache.Store(out.Plan.Key, out.Plan.ClusteringFactor)
	}
	if decide {
		e.cfg.DecisionCache.Put(decisionKey, out.Plan, out.Sampled)
	}
	return out, nil
}

// sampleDataset reservoir-samples up to n records from a handful of
// evenly spaced splits, the way the paper's mappers sample the data they
// acquire before the simulated dispatch.
func sampleDataset(ds *Dataset, n int, seed int64) ([]cube.Record, int64, error) {
	splits, err := ds.Input.Splits()
	if err != nil {
		return nil, 0, err
	}
	res := stats.NewReservoir[cube.Record](n, seed)
	var bytesRead int64
	stride := len(splits) / 8
	if stride < 1 {
		stride = 1
	}
	arity := ds.Schema.NumAttrs()
	for i := 0; i < len(splits); i += stride {
		sp := splits[i]
		it, err := sp.Open()
		if err != nil {
			return nil, 0, err
		}
		bytesRead += sp.SizeBytes()
		for {
			raw, ok, err := it.Next()
			if err != nil {
				it.Close()
				return nil, 0, err
			}
			if !ok {
				break
			}
			rec, err := recio.DecodeRecord(raw, arity)
			if err != nil {
				it.Close()
				return nil, 0, err
			}
			res.Add(rec)
		}
		if err := it.Close(); err != nil {
			return nil, 0, err
		}
	}
	return res.Sample(), bytesRead, nil
}

// Run plans and executes the workflow over the dataset under
// context.Background(); it is the compatibility wrapper around
// EvaluateContext for callers without a cancellation story.
func (e *Engine) Run(w *workflow.Workflow, ds *Dataset) (*Result, error) {
	return e.EvaluateContext(context.Background(), w, ds)
}

// EvaluateContext plans and executes the workflow over the dataset. The
// job's map/reduce tasks run on Config.Executor's shared pool, so any
// number of concurrent EvaluateContext calls (on one engine or many
// sharing an executor) multiplex over one bounded set of workers.
// Cancelling ctx tears the in-flight job down — shuffle senders unblock,
// spill and merge loops abort, temporary state is released — and the
// call returns an error satisfying errors.Is(err, context.Canceled).
func (e *Engine) EvaluateContext(ctx context.Context, w *workflow.Workflow, ds *Dataset) (*Result, error) {
	outcome, err := e.PlanContext(ctx, w, ds)
	if err != nil {
		return nil, err
	}
	return e.RunWithPlanContext(ctx, w, ds, outcome)
}

// RunWithPlan executes the workflow under an explicit plan outcome and
// context.Background(); see RunWithPlanContext.
func (e *Engine) RunWithPlan(w *workflow.Workflow, ds *Dataset, outcome PlanOutcome) (*Result, error) {
	return e.RunWithPlanContext(context.Background(), w, ds, outcome)
}

// jobStart is a launched evaluation job: the streaming output pipe plus
// the plan facts consumers need to decode and label it.
type jobStart struct {
	pipe  *mr.Pipe
	plan  optimizer.Plan
	early bool
	arity int
	// reuse is the run's result-reuse session (nil when reuse does not
	// apply). The job fills it per block; only a consumer that drains the
	// job to completion may commit its manifest.
	reuse *resultReuse
}

// startJob builds the evaluation job for the workflow under the given
// plan outcome and starts it, returning the streaming output. The caller
// owns the pipe and must Close it on every path. RunWithPlanContext
// drains it into a materialized Result; EvaluateStream hands it to the
// caller row by row.
func (e *Engine) startJob(ctx context.Context, w *workflow.Workflow, ds *Dataset, outcome PlanOutcome) (*jobStart, error) {
	s := ds.Schema
	plan := outcome.Plan
	bm, err := distkey.NewBlockMapper(s, plan.Key, plan.ClusteringFactor)
	if err != nil {
		return nil, fmt.Errorf("core: plan not executable: %w", err)
	}
	ev, err := localeval.New(w)
	if err != nil {
		return nil, err
	}

	early := false
	switch e.cfg.EarlyAggregation {
	case EarlyAggOn:
		if err := ev.SupportsEarlyAggregation(); err != nil {
			return nil, err
		}
		early = true
	case EarlyAggAuto:
		early = ev.SupportsEarlyAggregation() == nil
	}
	combined := e.cfg.SortMode == CombinedKeySort && !early

	arity := s.NumAttrs()
	basics := w.Basics()

	// Each map task gets a distkey.Session (scratch + block-key intern
	// cache for allocation-free per-record key generation) plus a combined
	// key scratch; each reduce task additionally gets a localeval.Session
	// — the arena-backed evaluator state reused across all of the task's
	// groups.
	newMapLocal := func(st *mr.TaskStats) any {
		return &mapLocal{dk: bm.NewSession(), rec: make(cube.Record, arity)}
	}
	newReduceLocal := func(st *mr.TaskStats) any {
		return &reduceLocal{
			dk:    bm.NewSession(),
			ev:    ev.NewSession(),
			names: make(map[string][]byte, len(basics)+len(w.Measures())),
		}
	}

	mapFn := func(ctx *mr.MapCtx, raw []byte) error {
		ml := ctx.Local.(*mapLocal)
		sess := ml.dk
		rec := ml.rec // per-task decode buffer: Blocks only reads it
		if err := recio.DecodeRecordInto(raw, rec); err != nil {
			return err
		}
		for _, block := range sess.Blocks(rec) {
			key := block // interned: allocated once per distinct block per task
			if combined {
				// Emit retains the key, so the composite block+record
				// bytes must be owned by the pair; the task arena gives
				// them a stable home at one allocation per 64KiB of keys
				// instead of one per pair.
				key = ml.combinedKey(block, raw)
			}
			if err := ctx.Emit(key, raw); err != nil {
				return err
			}
		}
		ctx.Stats.KeyCacheHits = sess.Hits
		return nil
	}

	var combinerFactory mr.CombinerFactory
	if early {
		combinerFactory = func(st *mr.TaskStats) mr.Combiner {
			return newEarlyAggCombiner(s, basics, st)
		}
	}

	ru := e.newResultReuse(w, ds, plan)

	reduceFn := func(ctx *mr.ReduceCtx, blockKey []byte, values *mr.GroupIter) error {
		rl := ctx.Local.(*reduceLocal)
		es := rl.ev
		switch e.cfg.Stage {
		case StageShuffle:
			return values.Drain()
		case StageSort:
			if err := loadGroup(values, es); err != nil {
				return err
			}
			ctx.Stats.GroupSortItems += int64(es.SortLoaded())
			ctx.Stats.EvalArenaBytes = es.ArenaBytes
			return nil
		}
		// Result-cache probe: a hit serves the block's owned rows straight
		// from the cache (the shuffled records are drained unread, their
		// evaluation skipped); a miss evaluates normally and captures the
		// emitted rows for the cache on the way out.
		fill := false
		if ru != nil {
			rl.cacheKey = append(append(rl.cacheKey[:0], ru.prefix...), blockKey...)
			if rows, ok := ru.rc.Get(rl.cacheKey); ok {
				ctx.Stats.ResultCacheHits++
				ctx.Stats.ResultCacheBytes += int64(len(rows))
				if err := values.Drain(); err != nil {
					return err
				}
				ru.note(rl.cacheKey)
				ctx.Stats.KeyCacheHits = rl.dk.Hits
				return ru.emitCached(ctx, rl, rows)
			}
			ctx.Stats.ResultCacheMisses++
			fill = true
			rl.capture = rl.capture[:0]
		}
		var results []localeval.Result
		var est localeval.Stats
		if early {
			groups, pairs, err := collectPartials(values, basics, arity)
			if err != nil {
				return err
			}
			results, est, err = es.EvaluateFromBasics(groups)
			if err != nil {
				return err
			}
			ctx.Stats.EvalRecords += pairs
			// Merging the partial states requires grouping them by
			// (measure, region); Hadoop does this by sorting, so the cost
			// model prices it like the in-group sort it replaces.
			ctx.Stats.GroupSortItems += pairs
		} else {
			if err := loadGroup(values, es); err != nil {
				return err
			}
			var err error
			results, est, err = es.EvaluateBlock(localeval.Options{
				SkipSort: combined,
				Scan:     e.cfg.LocalScan,
			})
			if err != nil {
				return err
			}
			ctx.Stats.EvalRecords += est.ScannedRecords
		}
		ctx.Stats.GroupSortItems += est.SortedItems
		ctx.Stats.WindowLookups += est.WindowLookups
		// Ownership filter (Section III-B.2): only the block owning a
		// result's region may output it; duplicated and partial results in
		// overlapping neighbours are dropped here. The task session's
		// intern cache makes each Owner probe allocation-free. Results
		// alias the evaluator session's arenas and are only valid inside
		// this group — emitting copies what survives the filter.
		sess := rl.dk
		for _, r := range results {
			if !bytes.Equal(sess.Owner(r.Region), blockKey) {
				continue
			}
			// Encode into the task scratch, then copy once at exact size:
			// the value is handed off to the output, the key is interned
			// per task so every record of a measure shares one key slice.
			rl.enc = appendMeasureRecord(rl.enc[:0], r.Region.Coord, r.Value)
			kb, ok := rl.names[r.Measure]
			if !ok {
				kb = []byte(r.Measure)
				rl.names[r.Measure] = kb
			}
			ctx.EmitStable(kb, append([]byte(nil), rl.enc...))
			if fill {
				idx, ok := ru.canonIdx[r.Measure]
				if !ok {
					// Unmappable measure name: drop the fill and poison the
					// manifest rather than cache an incomplete block.
					fill = false
					ru.markIncomplete()
					continue
				}
				rl.capture = appendCachedRow(rl.capture, idx, rl.enc)
			}
		}
		if fill {
			ru.rc.Put(rl.cacheKey, append([]byte(nil), rl.capture...))
			ru.note(rl.cacheKey)
		}
		ctx.Stats.KeyCacheHits = sess.Hits
		ctx.Stats.EvalArenaBytes = es.ArenaBytes
		ctx.Stats.AggPoolHits = es.PoolHits
		return nil
	}

	// Grouping mode: block grouping and early aggregation only need pairs
	// grouped by block, so GroupAuto resolves to the hash collector; the
	// combined-key sort genuinely needs the full-key order and keeps the
	// external sorter (its composite keys also make GroupBy non-trivial).
	groupMode := e.cfg.GroupMode
	if combined {
		if groupMode == mr.GroupHash {
			return nil, fmt.Errorf("core: GroupHash is incompatible with CombinedKeySort (the combined key's secondary order needs the sorted path)")
		}
		groupMode = mr.GroupSort
	}
	job := mr.Job{
		Name:   "casm",
		Input:  ds.Input,
		Map:    mapFn,
		Reduce: reduceFn,
		Config: mr.Config{
			NumReducers:       e.cfg.NumReducers,
			Executor:          e.cfg.Executor,
			MapParallelism:    e.cfg.MapParallelism,
			ReduceParallelism: e.cfg.ReduceParallelism,
			Transport:         e.cfg.Transport,
			NewCombiner:       combinerFactory,
			ShuffleDisabled:   e.cfg.Stage == StageMapOnly,
			GroupMode:         groupMode,
			MorselBytes:       e.cfg.MorselBytes,
			LocalAggBudget:    e.cfg.LocalAggBudget,
			SortMemoryItems:   e.cfg.SortMemoryItems,
			TempDir:           e.cfg.TempDir,
			NewMapLocal:       newMapLocal,
			NewReduceLocal:    newReduceLocal,
			FailureInjector:   e.cfg.FailureInjector,
		},
	}
	if combined {
		// Zero-alloc group identity: the block key is a prefix sub-slice
		// of the combined shuffle key.
		job.Config.GroupBy = func(key []byte) []byte { return key[:blockPrefixLen(key, arity)] }
	}
	if e.cfg.Stage == StageMapOnly {
		job.Reduce = nil
	}
	pipe, err := mr.RunPipe(ctx, job)
	if err != nil {
		return nil, err
	}
	return &jobStart{pipe: pipe, plan: plan, early: early, arity: arity, reuse: ru}, nil
}

// RunWithPlanContext executes the workflow under an explicit plan
// outcome; see EvaluateContext for the execution and cancellation
// contract.
//
// The job's output is streamed: batches of measure records are decoded
// into the result as reduce tasks emit them, concurrently with the rest
// of the reduce phase, instead of materializing one all-reducers []Pair
// first. The emitted Value buffers become garbage batch by batch and the
// batch slices recycle through the transport pool, so peak memory holds
// the decoded result, not the decoded result plus its full wire form.
func (e *Engine) RunWithPlanContext(ctx context.Context, w *workflow.Workflow, ds *Dataset, outcome PlanOutcome) (*Result, error) {
	// Whole-query reuse: a committed manifest for this exact (dataset,
	// workflow structure, plan) assembles the answer without a job — no
	// input bytes scanned, no shuffle. Falls through on any gap.
	if ru := e.newResultReuse(w, ds, outcome.Plan); ru != nil {
		if out, ok := e.resultFromCache(w, ds, ru, outcome); ok {
			return out, nil
		}
	}
	js, err := e.startJob(ctx, w, ds, outcome)
	if err != nil {
		return nil, err
	}
	pipe, arity := js.pipe, js.arity
	defer pipe.Close() // tears the job down on assembly-error paths

	out := &Result{
		Measures:        make(map[string][]MeasureRecord, len(w.Measures())),
		Plan:            js.plan,
		SampledPlan:     outcome.Sampled,
		EarlyAggregated: js.early,
		SampleSeconds:   outcome.SampleSeconds,
		PlanCached:      outcome.DecisionCached,
	}
	// Output assembly is per record, so it probes instead of allocating:
	// measure lookups go through an interned-name cache keyed by the raw
	// key bytes, and region coordinates are decoded into chunked arena
	// storage (one allocation per coordChunk coordinates; handed-out
	// sub-slices keep aliasing abandoned chunks).
	byKey := make(map[string]*workflow.Measure, len(w.Measures()))
	const coordChunk = 4096
	var coordArena []int64
	for {
		_, pairs, ok, err := pipe.NextBatch()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		for _, p := range pairs {
			m, ok := byKey[string(p.Key)]
			if !ok {
				name := string(p.Key)
				if m, ok = w.Measure(name); !ok {
					return nil, fmt.Errorf("core: output for unknown measure %q", name)
				}
				byKey[name] = m
			}
			if len(p.Value) < 8 {
				return nil, fmt.Errorf("core: truncated measure record")
			}
			if cap(coordArena)-len(coordArena) < arity {
				size := coordChunk
				if arity > size {
					size = arity
				}
				coordArena = make([]int64, 0, size)
			}
			start := len(coordArena)
			coordArena = coordArena[:start+arity]
			coords := coordArena[start : start+arity : start+arity]
			if err := cube.DecodeCoordsInto(p.Value[:len(p.Value)-8], coords); err != nil {
				return nil, err
			}
			v := math.Float64frombits(binary.LittleEndian.Uint64(p.Value[len(p.Value)-8:]))
			out.Measures[m.Name] = append(out.Measures[m.Name], MeasureRecord{
				Region: cube.Region{Grain: m.Grain, Coord: coords},
				Value:  v,
			})
		}
		transport.RecycleBatch(pairs)
	}
	if err := pipe.Close(); err != nil {
		return nil, err
	}
	out.Stats = pipe.Stats()
	if outcome.DecisionCached && len(out.Stats.MapTasks) > 0 {
		// One reused plan per job; stamped on the first map task so the
		// jobwide sum reads "plans this job did not recompute".
		out.Stats.MapTasks[0].PlanCacheHits = 1
	}
	// Batches arrive in reduce-completion order, but every measure's
	// records are sorted by encoded coordinates below — a total order,
	// since the ownership filter emits each region exactly once — so the
	// canonical result bytes are independent of arrival interleaving.
	var ea, eb []byte // reused encode scratch for the output sort
	for name := range out.Measures {
		ms := out.Measures[name]
		sort.Slice(ms, func(i, j int) bool {
			ea = cube.AppendCoords(ea[:0], ms[i].Region.Coord)
			eb = cube.AppendCoords(eb[:0], ms[j].Region.Coord)
			return bytes.Compare(ea, eb) < 0
		})
	}
	out.Estimate = EstimateFromStats(e.cfg.Cluster, out.Stats)
	out.Estimate.ReduceSeconds += outcome.SampleSeconds
	// The run drained every reduce group, so its touched-entry set is the
	// complete answer: publish the manifest for whole-query reuse.
	if js.reuse != nil {
		js.reuse.commit()
	}
	return out, nil
}

// EstimateFromStats converts substrate counters into a simulated response
// time on the given cluster.
func EstimateFromStats(c costmodel.Cluster, js mr.JobStats) costmodel.Estimate {
	mw := make([]costmodel.MapWork, len(js.MapTasks))
	for i, t := range js.MapTasks {
		mw[i] = costmodel.MapWork{
			BytesRead:    t.BytesRead,
			Records:      t.Records,
			PairsOut:     t.PairsOut,
			BytesOut:     t.BytesOut,
			CombineItems: t.CombineInputs,

			MorselsDispatched: t.MorselsDispatched,
			MorselSteals:      t.MorselSteals,
			LocalAggHits:      t.LocalAggHits,
			LocalAggSpills:    t.LocalAggSpills,

			PlanCacheHits:        t.PlanCacheHits,
			SharedScanQueries:    t.SharedScanQueries,
			SharedScanBytesSaved: t.SharedScanBytesSaved,
		}
	}
	rw := make([]costmodel.ReduceWork, len(js.ReduceTasks))
	for i, t := range js.ReduceTasks {
		rw[i] = costmodel.ReduceWork{
			BytesIn:        t.BytesIn,
			PairsIn:        t.PairsIn,
			SortItems:      t.SortItems,
			SpillBytes:     t.SpillBytes,
			GroupSortItems: t.GroupSortItems,
			GroupSpill:     t.GroupSpillBytes,
			EvalRecords:    t.EvalRecords,
			OutputRecords:  t.OutputRecords,
			EvalArenaBytes: t.EvalArenaBytes,
			AggPoolHits:    t.AggPoolHits,
			WindowLookups:  t.WindowLookups,

			ResultCacheHits:   t.ResultCacheHits,
			ResultCacheMisses: t.ResultCacheMisses,
			ResultCacheBytes:  t.ResultCacheBytes,
		}
	}
	return costmodel.EstimateJob(c, mw, rw)
}

// --- payload codecs ---

// appendMeasureRecord appends a packed <region coordinates, value> record
// to dst and returns the extended slice.
func appendMeasureRecord(dst []byte, coords []int64, v float64) []byte {
	dst = cube.AppendCoords(dst, coords)
	var f [8]byte
	binary.LittleEndian.PutUint64(f[:], math.Float64bits(v))
	return append(dst, f[:]...)
}

// encodeMeasureRecord packs region coordinates and the value.
func encodeMeasureRecord(coords []int64, v float64) []byte {
	return appendMeasureRecord(make([]byte, 0, len(coords)*3+8), coords, v)
}

func decodeMeasureRecord(b []byte, arity int) ([]int64, float64, error) {
	if len(b) < 8 {
		return nil, 0, fmt.Errorf("core: truncated measure record")
	}
	coords := make([]int64, arity)
	if err := cube.DecodeCoordsInto(b[:len(b)-8], coords); err != nil {
		return nil, 0, err
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(b[len(b)-8:]))
	return coords, v, nil
}

// blockPrefixLen returns the length of the block-key prefix (arity
// uvarints) of a combined shuffle key.
func blockPrefixLen(key []byte, arity int) int {
	off := 0
	for i := 0; i < arity; i++ {
		for off < len(key) && key[off] >= 0x80 {
			off++
		}
		off++ // terminating byte
	}
	if off > len(key) {
		off = len(key)
	}
	return off
}

// partialTag prefixes early-aggregation payloads.
const partialTag = 1

// earlyAggCombiner is the streaming early-aggregation combiner: each raw
// record emitted for a block is decoded once and folded straight into the
// per-(basic measure, region) aggregator state — no buffered value
// copies, no re-decoding at flush time. It implements mr.Combiner.
type earlyAggCombiner struct {
	s      *cube.Schema
	basics []*workflow.Measure
	arity  int
	st     *mr.TaskStats

	blocks map[string]*blockPartials
	groups int // total aggregator groups across blocks (= Len)

	// Reused per-Add decode/encode buffers.
	rec   cube.Record
	coord []int64
	enc   []byte
}

type blockPartials struct {
	perBasic []map[string]*partialGroup
}

type partialGroup struct {
	coords []int64
	agg    measure.Aggregator
}

func newEarlyAggCombiner(s *cube.Schema, basics []*workflow.Measure, st *mr.TaskStats) *earlyAggCombiner {
	arity := s.NumAttrs()
	return &earlyAggCombiner{
		s: s, basics: basics, arity: arity, st: st,
		blocks: make(map[string]*blockPartials),
		rec:    make(cube.Record, arity),
		coord:  make([]int64, arity),
	}
}

func (c *earlyAggCombiner) Add(blockKey, raw []byte) error {
	if err := recio.DecodeRecordInto(raw, c.rec); err != nil {
		return err
	}
	// Alloc-free probe; blockKey is only valid during Add, so the map-key
	// string materialized on first sight of a block is the mandatory copy.
	bp, ok := c.blocks[string(blockKey)]
	if !ok {
		bp = &blockPartials{perBasic: make([]map[string]*partialGroup, len(c.basics))}
		for i := range bp.perBasic {
			bp.perBasic[i] = make(map[string]*partialGroup)
		}
		c.blocks[string(blockKey)] = bp
	}
	for i, b := range c.basics {
		c.s.CoordOf(c.rec, b.Grain, c.coord)
		// Alloc-free lookup via the compiler's map[string][]byte-key
		// optimization; the key string is only materialized on first sight.
		c.enc = cube.AppendCoords(c.enc[:0], c.coord)
		g, ok := bp.perBasic[i][string(c.enc)]
		if !ok {
			g = &partialGroup{coords: append([]int64(nil), c.coord...), agg: b.Agg.New()}
			bp.perBasic[i][string(c.enc)] = g
			c.groups++
		} else {
			c.st.CombineMerges++
		}
		if b.InputAttr >= 0 {
			g.agg.Add(float64(c.rec[b.InputAttr]))
		} else {
			g.agg.Add(0)
		}
	}
	return nil
}

func (c *earlyAggCombiner) Len() int { return c.groups }

func (c *earlyAggCombiner) Flush(emit func(key, value []byte) error) error {
	// Deterministic flush: blocks in ascending key order, and within a
	// block the partials in (basic index, region coordinate) order.
	blockKeys := make([]string, 0, len(c.blocks))
	for k := range c.blocks {
		blockKeys = append(blockKeys, k)
	}
	sort.Strings(blockKeys)
	for _, bk := range blockKeys {
		bp := c.blocks[bk]
		// One key slice per block per flush, shared by all of the block's
		// emitted partials — the shuffle retains it but never mutates it.
		kb := []byte(bk)
		for i := range c.basics {
			regionKeys := make([]string, 0, len(bp.perBasic[i]))
			for rk := range bp.perBasic[i] {
				regionKeys = append(regionKeys, rk)
			}
			sort.Strings(regionKeys)
			for _, rk := range regionKeys {
				g := bp.perBasic[i][rk]
				// The emitted value is retained by the shuffle until the
				// job ends, so it gets its own allocation; the map key rk
				// already IS the encoded region coordinate.
				if err := emit(kb, appendPartial(nil, i, rk, g.agg.State())); err != nil {
					return err
				}
			}
		}
		delete(c.blocks, bk)
	}
	c.groups = 0
	return nil
}

// appendPartial appends a tagged partial-state payload to dst. ck is the
// EncodeCoords form of the region coordinates.
func appendPartial(dst []byte, basicIdx int, ck string, state []byte) []byte {
	dst = append(dst, partialTag)
	dst = binary.AppendUvarint(dst, uint64(basicIdx))
	dst = binary.AppendUvarint(dst, uint64(len(ck)))
	dst = append(dst, ck...)
	return append(dst, state...)
}

// splitPartial slices a partial payload into its parts without decoding
// the coordinates; ck and state alias b.
func splitPartial(b []byte) (int, []byte, []byte, error) {
	if len(b) < 2 || b[0] != partialTag {
		return 0, nil, nil, fmt.Errorf("core: not a partial payload")
	}
	b = b[1:]
	idx, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, nil, fmt.Errorf("core: corrupt partial index")
	}
	b = b[n:]
	ckLen, n := binary.Uvarint(b)
	if n <= 0 || uint64(len(b[n:])) < ckLen {
		return 0, nil, nil, fmt.Errorf("core: corrupt partial coords")
	}
	b = b[n:]
	return int(idx), b[:ckLen], b[ckLen:], nil
}

func decodePartial(b []byte, arity int) (int, []int64, []byte, error) {
	idx, ck, state, err := splitPartial(b)
	if err != nil {
		return 0, nil, nil, err
	}
	coords, err := cube.DecodeCoords(string(ck), arity)
	if err != nil {
		return 0, nil, nil, err
	}
	return idx, coords, state, nil
}

// mapLocal is one map task's reusable state (mr.Config.NewMapLocal).
type mapLocal struct {
	dk *distkey.Session
	// rec is the task's record decode buffer, reused across records
	// (nothing downstream retains it — block keys are interned copies).
	rec cube.Record
	// chunk is the current combined-key arena chunk. Combined keys are
	// unique per pair (block prefix + raw record), so they cannot be
	// interned; the arena instead amortizes their storage to one
	// allocation per chunk.
	chunk []byte
	// chunkNext is the next chunk's capacity: chunks grow geometrically
	// from combinedKeyChunkMin to combinedKeyChunkMax, so the many tasks
	// that emit only a few combined keys (sliding windows off, small
	// splits) don't each pin a fixed 64KiB.
	chunkNext int
}

const (
	combinedKeyChunkMin = 256
	combinedKeyChunkMax = 1 << 16
)

// combinedKey appends block+raw into the task arena and returns the
// stable composite key. A full chunk is abandoned (kept alive by the
// emitted keys pointing into it) and a fresh one started, so handed-out
// keys are never moved or logically extended by later appends.
func (ml *mapLocal) combinedKey(block, raw []byte) []byte {
	need := len(block) + len(raw)
	if cap(ml.chunk)-len(ml.chunk) < need {
		size := ml.chunkNext
		if size < combinedKeyChunkMin {
			size = combinedKeyChunkMin
		}
		if next := size * 2; next <= combinedKeyChunkMax {
			ml.chunkNext = next
		} else {
			ml.chunkNext = combinedKeyChunkMax
		}
		if need > size {
			size = need
		}
		ml.chunk = make([]byte, 0, size)
	}
	start := len(ml.chunk)
	ml.chunk = append(append(ml.chunk, block...), raw...)
	return ml.chunk[start:len(ml.chunk):len(ml.chunk)]
}

// reduceLocal is one reduce task's reusable state
// (mr.Config.NewReduceLocal): the block-key intern session and the
// arena-backed evaluator session, both shared across all of the task's
// groups.
type reduceLocal struct {
	dk *distkey.Session
	ev *localeval.Session
	// enc is the output-record encode scratch; names interns one stable
	// []byte per measure name for EmitStable (output keys are retained by
	// the framework uncopied, so they must never be scratch).
	enc   []byte
	names map[string][]byte
	// cacheKey and capture are the result-reuse scratch: the probe key of
	// the current group and the cached-row encoding of its emitted output
	// (both copied before the cache retains them).
	cacheKey []byte
	capture  []byte
}

// loadGroup streams a group's raw records straight into the evaluator
// session's columnar arena — one flat decode per record, no per-record
// slice allocations.
func loadGroup(values *mr.GroupIter, es *localeval.Session) error {
	for {
		p, ok, err := values.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if err := es.AppendRaw(p.Value); err != nil {
			return err
		}
	}
}

// collectPartials materializes and merges a group's partial aggregates.
func collectPartials(values *mr.GroupIter, basics []*workflow.Measure, arity int) (map[string][]localeval.BasicGroup, int64, error) {
	type group struct {
		coords []int64
		agg    measure.Aggregator
	}
	perBasic := make([]map[string]*group, len(basics))
	for i := range perBasic {
		perBasic[i] = make(map[string]*group)
	}
	var pairs int64
	for {
		p, ok, err := values.Next()
		if err != nil {
			return nil, 0, err
		}
		if !ok {
			break
		}
		pairs++
		idx, ck, state, err := splitPartial(p.Value)
		if err != nil {
			return nil, 0, err
		}
		if idx < 0 || idx >= len(basics) {
			return nil, 0, fmt.Errorf("core: partial for unknown basic %d", idx)
		}
		// The payload's encoded coordinate bytes double as the map key
		// (alloc-free probe); coordinates are only decoded on first sight.
		g, okg := perBasic[idx][string(ck)]
		if !okg {
			coords, err := cube.DecodeCoords(string(ck), arity)
			if err != nil {
				return nil, 0, err
			}
			g = &group{coords: coords, agg: basics[idx].Agg.New()}
			perBasic[idx][string(ck)] = g
		}
		if err := g.agg.MergeState(state); err != nil {
			return nil, 0, err
		}
	}
	out := make(map[string][]localeval.BasicGroup, len(basics))
	for i, b := range basics {
		groups := make([]localeval.BasicGroup, 0, len(perBasic[i]))
		for _, g := range perBasic[i] {
			groups = append(groups, localeval.BasicGroup{Coords: g.coords, Agg: g.agg})
		}
		out[b.Name] = groups
	}
	return out, pairs, nil
}
