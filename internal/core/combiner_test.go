package core

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/measure"
	"github.com/casm-project/casm/internal/mr"
	"github.com/casm-project/casm/internal/recio"
	"github.com/casm-project/casm/internal/workflow"
	"github.com/casm-project/casm/internal/workload"
)

// mergeableBasicsWorkflow builds one basic measure per distributive and
// algebraic aggregate function — the full set early aggregation may apply
// to — all at the same grain.
func mergeableBasicsWorkflow(t *testing.T, su *workload.Suite) *workflow.Workflow {
	t.Helper()
	w := workflow.New(su.Schema)
	g := su.Schema.MustGrain(
		cube.GrainSpec{Attr: "a1", Level: "low"},
		cube.GrainSpec{Attr: "t1", Level: "hour"},
	)
	for _, fn := range []measure.Func{
		measure.Count, measure.Sum, measure.Min, measure.Max, // distributive
		measure.Avg, measure.Var, measure.StdDev, // algebraic
	} {
		spec := measure.Spec{Func: fn}
		if spec.Class() == measure.Holistic {
			t.Fatalf("%s unexpectedly holistic", fn)
		}
		attr := "a2"
		if fn == measure.Count {
			attr = ""
		}
		if err := w.AddBasic("m_"+string(fn), g, spec, attr); err != nil {
			t.Fatal(err)
		}
	}
	return w
}

// TestStreamingCombinerMatchesBufferedMerge is the early-aggregation
// equivalence property: for every distributive and algebraic measure,
// folding records one at a time into the streaming combiner — including
// mid-stream flushes that split one group's state across several shipped
// partials — then merging the partial states must produce exactly the
// aggregate of buffering all records and adding them to one aggregator.
func TestStreamingCombinerMatchesBufferedMerge(t *testing.T) {
	su := workload.NewSuite()
	w := mergeableBasicsWorkflow(t, su)
	basics := w.Basics()
	arity := su.Schema.NumAttrs()
	records := su.Generate(3000, workload.SkewedTime, 7)

	// Streaming path: combiner Add per record, flush every 251 records so
	// groups ship as multiple partials, then reduce-side MergeState.
	var st mr.TaskStats
	comb := newEarlyAggCombiner(su.Schema, basics, &st)
	type merged struct {
		coords []int64
		agg    measure.Aggregator
	}
	perBasic := make([]map[string]*merged, len(basics))
	for i := range perBasic {
		perBasic[i] = make(map[string]*merged)
	}
	absorb := func(key, value []byte) error {
		idx, coords, state, err := decodePartial(value, arity)
		if err != nil {
			return err
		}
		k := cube.EncodeCoords(coords)
		g, ok := perBasic[idx][k]
		if !ok {
			g = &merged{coords: coords, agg: basics[idx].Agg.New()}
			perBasic[idx][k] = g
		}
		return g.agg.MergeState(state)
	}
	var raw []byte
	for i, rec := range records {
		raw = recio.AppendRecord(raw[:0], rec)
		if err := comb.Add([]byte("block"), raw); err != nil {
			t.Fatal(err)
		}
		if (i+1)%251 == 0 {
			if err := comb.Flush(absorb); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := comb.Flush(absorb); err != nil {
		t.Fatal(err)
	}
	if comb.Len() != 0 {
		t.Errorf("combiner not reset after flush: Len = %d", comb.Len())
	}
	if st.CombineMerges == 0 {
		t.Error("no in-place merges counted on a skewed stream")
	}

	// Buffered reference: one aggregator per (basic, region) fed every
	// record directly, in the same arrival order.
	ref := make([]map[string]*merged, len(basics))
	for i := range ref {
		ref[i] = make(map[string]*merged)
	}
	coord := make([]int64, arity)
	for _, rec := range records {
		for i, b := range basics {
			su.Schema.CoordOf(rec, b.Grain, coord)
			k := cube.EncodeCoords(coord)
			g, ok := ref[i][k]
			if !ok {
				g = &merged{coords: append([]int64(nil), coord...), agg: b.Agg.New()}
				ref[i][k] = g
			}
			if b.InputAttr >= 0 {
				g.agg.Add(float64(rec[b.InputAttr]))
			} else {
				g.agg.Add(0)
			}
		}
	}

	for i, b := range basics {
		if len(perBasic[i]) != len(ref[i]) {
			t.Errorf("%s: %d groups streamed, %d buffered", b.Name, len(perBasic[i]), len(ref[i]))
			continue
		}
		for k, want := range ref[i] {
			got, ok := perBasic[i][k]
			if !ok {
				t.Errorf("%s: group %q missing from streamed result", b.Name, k)
				continue
			}
			if got.agg.N() != want.agg.N() {
				t.Errorf("%s group %q: N = %d, want %d", b.Name, k, got.agg.N(), want.agg.N())
			}
			gv, wv := got.agg.Result(), want.agg.Result()
			if math.Abs(gv-wv) > 1e-9*math.Max(1, math.Abs(wv)) {
				t.Errorf("%s group %q: result %v, want %v", b.Name, k, gv, wv)
			}
		}
	}
}

// TestCombinerFlushDeterministic checks that two combiners fed the same
// stream flush byte-identical sequences: blocks in ascending key order,
// partials in (basic, region) order — the shuffle byte stream must not
// depend on map iteration order.
func TestCombinerFlushDeterministic(t *testing.T) {
	su := workload.NewSuite()
	w := mergeableBasicsWorkflow(t, su)
	basics := w.Basics()
	records := su.Generate(500, workload.Uniform, 11)

	flushed := func() ([]string, [][]byte) {
		var st mr.TaskStats
		comb := newEarlyAggCombiner(su.Schema, basics, &st)
		var raw []byte
		for i, rec := range records {
			raw = recio.AppendRecord(raw[:0], rec)
			if err := comb.Add([]byte(fmt.Sprintf("block-%d", i%5)), raw); err != nil {
				t.Fatal(err)
			}
		}
		var keys []string
		var vals [][]byte
		if err := comb.Flush(func(k, v []byte) error {
			keys = append(keys, string(k))
			vals = append(vals, v)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return keys, vals
	}

	k1, v1 := flushed()
	k2, v2 := flushed()
	if len(k1) != len(k2) {
		t.Fatalf("flush lengths differ: %d vs %d", len(k1), len(k2))
	}
	for i := range k1 {
		if k1[i] != k2[i] || !bytes.Equal(v1[i], v2[i]) {
			t.Fatalf("flush diverges at emission %d: %q vs %q", i, k1[i], k2[i])
		}
		if i > 0 && k1[i-1] > k1[i] {
			t.Fatalf("flush keys not ascending: %q before %q", k1[i-1], k1[i])
		}
	}
}
