package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/dfs"
	"github.com/casm-project/casm/internal/recio"
	"github.com/casm-project/casm/internal/workflow"
)

// SaveResults persists a result's measure records as a block-aligned DFS
// file, the way the paper's jobs write their output back to the
// distributed file system. Records are framed as
// uvarint(len(measure)) ‖ measure ‖ coords ‖ float64(value) and sorted by
// (measure, region key) so files are deterministic.
func SaveResults(fs *dfs.FS, name string, res *Result, blockSize int) error {
	type row struct {
		measure string
		payload []byte
	}
	var rows []row
	for m, records := range res.Measures {
		for _, r := range records {
			buf := make([]byte, 0, len(m)+2+len(r.Region.Coord)*3+8)
			var tmp [binary.MaxVarintLen64]byte
			buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(len(m)))]...)
			buf = append(buf, m...)
			buf = append(buf, encodeMeasureRecord(r.Region.Coord, r.Value)...)
			rows = append(rows, row{measure: m, payload: buf})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		return string(rows[i].payload) < string(rows[j].payload)
	})

	var data []byte
	blockStart := 0
	for _, r := range rows {
		frameLen := len(r.payload) + binary.MaxVarintLen64
		if len(data)-blockStart+frameLen > blockSize {
			pad := blockSize - (len(data) - blockStart)
			data = append(data, make([]byte, pad)...)
			blockStart = len(data)
		}
		var err error
		data, err = recio.AppendFrame(data, r.payload)
		if err != nil {
			return err
		}
	}
	return fs.Write(name, data)
}

// LoadResults reads a file written by SaveResults, resolving measure
// grains through the workflow.
func LoadResults(fs *dfs.FS, name string, w *workflow.Workflow) (map[string][]MeasureRecord, error) {
	blocks, err := fs.Blocks(name)
	if err != nil {
		return nil, err
	}
	arity := w.Schema().NumAttrs()
	out := make(map[string][]MeasureRecord)
	for _, b := range blocks {
		data, err := fs.ReadBlock(name, b.Index)
		if err != nil {
			return nil, err
		}
		fr := recio.NewFrameReader(data)
		for {
			payload, ok, err := fr.Next()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			nameLen, n := binary.Uvarint(payload)
			if n <= 0 || uint64(len(payload[n:])) < nameLen {
				return nil, fmt.Errorf("core: corrupt result frame in %q", name)
			}
			mName := string(payload[n : n+int(nameLen)])
			m, okM := w.Measure(mName)
			if !okM {
				return nil, fmt.Errorf("core: result for unknown measure %q", mName)
			}
			coords, v, err := decodeMeasureRecord(payload[n+int(nameLen):], arity)
			if err != nil {
				return nil, err
			}
			out[mName] = append(out[mName], MeasureRecord{
				Region: cube.Region{Grain: m.Grain, Coord: coords},
				Value:  v,
			})
		}
	}
	return out, nil
}
