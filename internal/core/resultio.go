package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"github.com/casm-project/casm/internal/blockstore"
	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/recio"
	"github.com/casm-project/casm/internal/workflow"
)

// SaveResults persists a result's measure records as a block store file,
// the way the paper's jobs write their output back to the distributed
// file system. Records are framed as
// uvarint(len(measure)) ‖ measure ‖ coords ‖ float64(value), sorted by
// (measure, region key), and carved into ≤blockSize blocks under
// ascending big-endian block keys, so files are deterministic.
func SaveResults(st *blockstore.Store, name string, res *Result, blockSize int) error {
	var rows [][]byte
	for m, records := range res.Measures {
		for _, r := range records {
			buf := make([]byte, 0, len(m)+2+len(r.Region.Coord)*3+8)
			var tmp [binary.MaxVarintLen64]byte
			buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(len(m)))]...)
			buf = append(buf, m...)
			buf = append(buf, encodeMeasureRecord(r.Region.Coord, r.Value)...)
			rows = append(rows, buf)
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		return string(rows[i]) < string(rows[j])
	})

	flush := func(idx int, block []byte) error {
		var key [4]byte
		binary.BigEndian.PutUint32(key[:], uint32(idx))
		return st.PutRaw(name, key[:], block)
	}
	var block []byte
	idx := 0
	for _, r := range rows {
		if len(block) > 0 && len(block)+len(r)+binary.MaxVarintLen64 > blockSize {
			if err := flush(idx, block); err != nil {
				return err
			}
			idx++
			block = nil
		}
		var err error
		block, err = recio.AppendFrame(block, r)
		if err != nil {
			return err
		}
	}
	if len(block) > 0 {
		if err := flush(idx, block); err != nil {
			return err
		}
	}
	return st.Flush()
}

// LoadResults reads a file written by SaveResults, resolving measure
// grains through the workflow.
func LoadResults(st *blockstore.Store, name string, w *workflow.Workflow) (map[string][]MeasureRecord, error) {
	blocks, err := st.Blocks(name)
	if err != nil {
		return nil, err
	}
	arity := w.Schema().NumAttrs()
	out := make(map[string][]MeasureRecord)
	for _, b := range blocks {
		data, err := st.ReadBlock(name, b.Index)
		if err != nil {
			return nil, err
		}
		fr := recio.NewFrameReader(data)
		for {
			payload, ok, err := fr.Next()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			nameLen, n := binary.Uvarint(payload)
			if n <= 0 || uint64(len(payload[n:])) < nameLen {
				return nil, fmt.Errorf("core: corrupt result frame in %q", name)
			}
			mName := string(payload[n : n+int(nameLen)])
			m, okM := w.Measure(mName)
			if !okM {
				return nil, fmt.Errorf("core: result for unknown measure %q", mName)
			}
			coords, v, err := decodeMeasureRecord(payload[n+int(nameLen):], arity)
			if err != nil {
				return nil, err
			}
			out[mName] = append(out[mName], MeasureRecord{
				Region: cube.Region{Grain: m.Grain, Coord: coords},
				Value:  v,
			})
		}
	}
	return out, nil
}
