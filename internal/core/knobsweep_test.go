package core

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/casm-project/casm/internal/localeval"
	"github.com/casm-project/casm/internal/workload"
)

// TestEngineKnobSweepByteIdentical sweeps every evaluator-relevant engine
// knob — scan mode, combined-key sort, early aggregation, and a forced-
// spill memory budget — over random bit-stable workflows and demands
// byte-identical measure output from every combination (and agreement
// with the single-block oracle). This is the engine-level leg of the
// arena-session equivalence property: whatever path feeds the reduce-side
// evaluator session, the floats coming out must not move by a bit.
func TestEngineKnobSweepByteIdentical(t *testing.T) {
	su := workload.NewSuite()
	seeds := 6
	if testing.Short() {
		seeds = 2
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(6000 + seed)))
			w := randomWorkflowOpts(t, su.Schema, rng, true)
			records := su.Generate(400+rng.Intn(800), workload.Uniform, int64(seed))
			ds := MemoryDataset(su.Schema, records, 1+rng.Intn(6))
			want := oracle(t, w, records)

			var baseOut, baseLabel string
			for _, scan := range []localeval.ScanMode{localeval.HashScan, localeval.ChainScan} {
				for _, sortMode := range []SortMode{TwoPassSort, CombinedKeySort} {
					for _, early := range []EarlyAggMode{EarlyAggOff, EarlyAggAuto} {
						for _, memItems := range []int{0, 2} { // 0 = default budget; 2 forces spills
							label := fmt.Sprintf("scan=%v sort=%v early=%v mem=%d", scan, sortMode, early, memItems)
							cfg := Config{
								NumReducers:      1 + rng.Intn(6),
								LocalScan:        scan,
								SortMode:         sortMode,
								EarlyAggregation: early,
								SortMemoryItems:  memItems,
							}
							res := runEngine(t, cfg, w, ds)
							compare(t, label, want, flatten(res))
							out := canonicalOutput(res)
							if baseOut == "" {
								baseOut, baseLabel = out, label
							} else if out != baseOut {
								t.Errorf("output of %q differs byte-wise from %q", label, baseLabel)
							}
						}
					}
				}
			}
		})
	}
}
