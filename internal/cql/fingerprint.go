package cql

import (
	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/workflow"
)

// Fingerprint parses the CQL source and returns the canonical workflow
// fingerprint of the result. Because the fingerprint is computed on the
// parsed structure — not the text — reformatted, reordered, or renamed
// variants of the same query all map to one fingerprint, which is what
// lets the plan cache recognize a repeated query arriving as fresh text.
func Fingerprint(schema *cube.Schema, src string) (string, error) {
	w, err := Parse(schema, src)
	if err != nil {
		return "", err
	}
	return workflow.Fingerprint(w)
}
