// Package cql implements a small text query language for composite
// subset measures, compiling to aggregation workflows. It lets the CLI
// tools accept queries without Go code:
//
//	-- the paper's weblog analysis
//	MEASURE m1 = MEDIAN(pages)  AT (keyword:word, time:minute);
//	MEASURE m2 = MEDIAN(ads)    AT (keyword:word, time:hour);
//	MEASURE m3 = RATIO(m1, m2)  AT (keyword:word, time:minute);
//	MEASURE m4 = WINDOW AVG(m3) OVER time(-9, 0)
//	                            AT (keyword:word, time:minute);
//
// Statements are MEASURE definitions separated by semicolons. A measure
// body is one of:
//
//	AGG(attr)                      basic aggregation (COUNT(*) for counting)
//	QUANTILE(rank, attr)           parameterized basic aggregation
//	EXPR(m, ...)                   self measure (RATIO, ADD, SUB, MUL, IDENT)
//	ROLLUP AGG(m)                  child/parent aggregation
//	INHERIT(m)                     parent/child copy-down
//	WINDOW AGG(m) OVER a(lo, hi)   sibling sliding window (multiple a(lo,hi)
//	                               clauses may be comma-separated)
//
// AT names the measure's granularity; attributes not mentioned are at
// ALL. Keywords are case-insensitive; -- and # start line comments.
package cql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokPunct // one of ( ) , : ; = * -
)

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokNumber:
		return fmt.Sprintf("number %q", t.text)
	case tokPunct:
		return fmt.Sprintf("%q", t.text)
	default:
		return fmt.Sprintf("identifier %q", t.text)
	}
}

// lexer tokenizes CQL source.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) errf(line, col int, format string, args ...any) error {
	return fmt.Errorf("cql: %d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '#':
			l.skipLine()
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			l.skipLine()
		default:
			goto tokenStart
		}
	}
	return token{kind: tokEOF, line: l.line, col: l.col}, nil

tokenStart:
	line, col := l.line, l.col
	c := l.peek()
	switch {
	case isIdentStart(rune(c)):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(rune(l.peek())) {
			l.advance()
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], line: line, col: col}, nil
	case c >= '0' && c <= '9':
		start := l.pos
		seenDot := false
		for l.pos < len(l.src) {
			p := l.peek()
			if p == '.' && !seenDot {
				seenDot = true
				l.advance()
				continue
			}
			if p < '0' || p > '9' {
				break
			}
			l.advance()
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], line: line, col: col}, nil
	case strings.IndexByte("(),:;=*-", c) >= 0:
		l.advance()
		return token{kind: tokPunct, text: string(c), line: line, col: col}, nil
	default:
		return token{}, l.errf(line, col, "unexpected character %q", c)
	}
}

func (l *lexer) skipLine() {
	for l.pos < len(l.src) && l.peek() != '\n' {
		l.advance()
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

// lexAll tokenizes the whole input (the grammar is small enough that
// materializing tokens keeps the parser simple and error positions
// exact).
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
