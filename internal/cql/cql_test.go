package cql

import (
	"strings"
	"testing"

	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/distkey"
	"github.com/casm-project/casm/internal/measure"
	"github.com/casm-project/casm/internal/workflow"
)

func testSchema(t testing.TB) *cube.Schema {
	t.Helper()
	return cube.MustSchema(
		cube.MustAttribute("keyword", cube.Nominal, 1000,
			cube.Level{Name: "word", Span: 1},
			cube.Level{Name: "group", Span: 50},
		),
		cube.MustAttribute("pages", cube.Numeric, 100, cube.Level{Name: "value", Span: 1}),
		cube.MustAttribute("ads", cube.Numeric, 100, cube.Level{Name: "value", Span: 1}),
		cube.TimeAttribute("time", 2),
	)
}

const weblogCQL = `
-- the paper's weblog analysis, M1 through M4
MEASURE m1 = MEDIAN(pages)  AT (keyword:word, time:minute);
MEASURE m2 = MEDIAN(ads)    AT (keyword:word, time:hour);
MEASURE m3 = RATIO(m1, m2)  AT (keyword:word, time:minute);
MEASURE m4 = WINDOW AVG(m3) OVER time(-9, 0) AT (keyword:word, time:minute);
`

func TestParseWeblog(t *testing.T) {
	s := testSchema(t)
	w, err := Parse(s, weblogCQL)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(w.Measures()); got != 4 {
		t.Fatalf("measures = %d", got)
	}
	m1, _ := w.Measure("m1")
	if m1.Kind != workflow.Basic || m1.Agg.Func != measure.Median {
		t.Errorf("m1 = %+v", m1)
	}
	pi, _ := s.AttrIndex("pages")
	if m1.InputAttr != pi {
		t.Errorf("m1 input = %d", m1.InputAttr)
	}
	m3, _ := w.Measure("m3")
	if m3.Kind != workflow.Self || len(m3.Sources) != 2 {
		t.Errorf("m3 = %+v", m3)
	}
	m4, _ := w.Measure("m4")
	if m4.Kind != workflow.Sliding {
		t.Fatalf("m4 kind = %v", m4.Kind)
	}
	ti, _ := s.AttrIndex("time")
	if len(m4.Window) != 1 || m4.Window[0] != (workflow.RangeAnn{Attr: ti, Low: -9, High: 0}) {
		t.Errorf("m4 window = %+v", m4.Window)
	}
	// The parsed query derives the paper's overlapping key.
	key, _, err := distkey.Derive(w)
	if err != nil {
		t.Fatal(err)
	}
	if got := key.Format(s); got != "<keyword:word, time:hour(-1,0)>" {
		t.Errorf("key = %s", got)
	}
}

func TestParseAllKinds(t *testing.T) {
	s := testSchema(t)
	src := `
MEASURE base   = SUM(pages)          AT (keyword:word, time:minute);
MEASURE cnt    = COUNT(*)            AT (keyword:word, time:minute);
MEASURE p90    = QUANTILE(0.9, ads)  AT (keyword:group, time:hour);
MEASURE daily  = ROLLUP AVG(base)    AT (keyword:word, time:day);
MEASURE back   = INHERIT(daily)      AT (keyword:word, time:minute);
MEASURE norm   = RATIO(base, back)   AT (keyword:word, time:minute);
MEASURE trend  = WINDOW SUM(base) OVER time(-4, 0) AT (keyword:word, time:minute);
`
	w, err := Parse(s, src)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[workflow.Kind]int{}
	for _, m := range w.Measures() {
		kinds[m.Kind]++
	}
	if kinds[workflow.Basic] != 3 || kinds[workflow.Rollup] != 1 ||
		kinds[workflow.Inherit] != 1 || kinds[workflow.Self] != 1 || kinds[workflow.Sliding] != 1 {
		t.Errorf("kinds = %v", kinds)
	}
	p90, _ := w.Measure("p90")
	if p90.Agg.Func != measure.Quantile || p90.Agg.Arg != 0.9 {
		t.Errorf("p90 agg = %+v", p90.Agg)
	}
	cnt, _ := w.Measure("cnt")
	if cnt.InputAttr != -1 {
		t.Errorf("count input = %d", cnt.InputAttr)
	}
}

func TestParseMultiAttributeWindow(t *testing.T) {
	s := testSchema(t)
	src := `
MEASURE base = SUM(ads) AT (pages:value, time:minute);
MEASURE w2   = WINDOW AVG(base) OVER time(-3, 0), pages(-1, 1) AT (pages:value, time:minute);
`
	w, err := Parse(s, src)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := w.Measure("w2")
	if len(m.Window) != 2 {
		t.Fatalf("window clauses = %d", len(m.Window))
	}
}

func TestParseErrors(t *testing.T) {
	s := testSchema(t)
	cases := []struct {
		src  string
		want string // substring of the error
	}{
		{"MEASURE = SUM(pages) AT (time:minute);", "identifier"},
		{"MEASURE m SUM(pages) AT (time:minute);", `"="`},
		{"MEASURE m = BOGUS(pages) AT (time:minute);", "unknown function"},
		{"MEASURE m = SUM(nope) AT (time:minute);", "unknown attribute"},
		{"MEASURE m = SUM(pages) AT (time:eon);", "no level"},
		{"MEASURE m = SUM(pages) AT (ghost:value);", "unknown attribute"},
		{"MEASURE m = SUM(pages) AT (time:minute)", `";"`},
		{"MEASURE m = RATIO(a, b) AT (time:minute);", "unknown measure"},
		{"MEASURE m = SUM(*) AT (time:minute);", "only COUNT"},
		{"MEASURE m = SUM(pages) AT (time:minute);\nMEASURE n = SUM(m) AT (time:hour);", "use ROLLUP"},
		{"MEASURE m = SUM(pages) AT (time:minute);\nMEASURE n = WINDOW SUM(m) OVER ghost(-1,0) AT (time:minute);", "unknown attribute"},
		{"MEASURE m = SUM(pages) AT (keyword:word, time:minute);\nMEASURE n = WINDOW SUM(m) OVER keyword(-1,0) AT (keyword:word, time:minute);", "nominal"},
		{"measure m = sum(pages) at (time:minute); @", "unexpected character"},
		{"", "no measures"},
		{"MEASURE m = QUANTILE(1.5, pages) AT (time:minute);", "quantile"},
	}
	for i, c := range cases {
		_, err := Parse(s, c.src)
		if err == nil {
			t.Errorf("case %d: no error for %q", i, c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("case %d: error %q does not mention %q", i, err, c.want)
		}
	}
}

func TestCaseInsensitiveKeywordsAndComments(t *testing.T) {
	s := testSchema(t)
	// Keywords are case-insensitive; attribute/level/measure identifiers
	// are case-sensitive.
	src := `
# hash comment
measure M1 = sum(pages) at (time:minute); -- trailing comment
Measure M2 = Rollup Max(M1) At (time:hour);
`
	w, err := Parse(s, src)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := w.Measure("M2"); !ok {
		t.Fatal("M2 missing")
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	s := testSchema(t)
	w1, err := Parse(s, weblogCQL+`
MEASURE extra = QUANTILE(0.75, pages) AT (keyword:group);
MEASURE cnt   = COUNT(*) AT (keyword:ALL);
MEASURE up    = ROLLUP SUM(m1) AT (keyword:word, time:day);
MEASURE down  = INHERIT(up) AT (keyword:word, time:minute);
`)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(w1)
	w2, err := Parse(s, text)
	if err != nil {
		t.Fatalf("round trip parse failed: %v\n%s", err, text)
	}
	if len(w1.Measures()) != len(w2.Measures()) {
		t.Fatalf("measure counts differ: %d vs %d", len(w1.Measures()), len(w2.Measures()))
	}
	for i, m1 := range w1.Measures() {
		m2 := w2.Measures()[i]
		if m1.Name != m2.Name || m1.Kind != m2.Kind || !m1.Grain.Equal(m2.Grain) ||
			m1.Agg != m2.Agg || m1.InputAttr != m2.InputAttr {
			t.Errorf("measure %d differs: %+v vs %+v", i, m1, m2)
		}
		if len(m1.Sources) != len(m2.Sources) {
			t.Errorf("measure %d sources differ", i)
		}
		if len(m1.Window) != len(m2.Window) {
			t.Errorf("measure %d windows differ", i)
		}
	}
	// Formatting is stable.
	if Format(w2) != text {
		t.Error("Format not idempotent")
	}
}

func TestParsePositionsInErrors(t *testing.T) {
	s := testSchema(t)
	_, err := Parse(s, "MEASURE m = SUM(pages)\nAT (time:minute)\nOOPS;")
	if err == nil || !strings.Contains(err.Error(), "3:") {
		t.Errorf("error %v lacks line 3 position", err)
	}
}

func TestParseScale(t *testing.T) {
	s := testSchema(t)
	src := `
MEASURE base = SUM(pages) AT (time:hour);
MEASURE pct  = SCALE(100, base) AT (time:hour);
`
	w, err := Parse(s, src)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := w.Measure("pct")
	if m.Kind != workflow.Self || m.Expr.Eval([]float64{2}) != 200 {
		t.Fatalf("pct = %+v", m)
	}
	// Round trip.
	w2, err := Parse(s, Format(w))
	if err != nil {
		t.Fatalf("round trip: %v\n%s", err, Format(w))
	}
	m2, _ := w2.Measure("pct")
	if m2.Expr.Eval([]float64{2}) != 200 {
		t.Fatal("scale factor lost in round trip")
	}
	if _, err := Parse(s, "MEASURE x = SCALE(2, ghost) AT (time:hour);"); err == nil {
		t.Error("unknown scale source accepted")
	}
}
