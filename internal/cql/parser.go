package cql

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/measure"
	"github.com/casm-project/casm/internal/workflow"
)

// Parse compiles CQL source into an aggregation workflow over the schema.
func Parse(schema *cube.Schema, src string) (*workflow.Workflow, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{schema: schema, toks: toks, w: workflow.New(schema)}
	for !p.at(tokEOF) {
		if err := p.measureStmt(); err != nil {
			return nil, err
		}
	}
	if err := p.w.Validate(); err != nil {
		return nil, err
	}
	return p.w, nil
}

type parser struct {
	schema *cube.Schema
	toks   []token
	i      int
	w      *workflow.Workflow
}

func (p *parser) cur() token { return p.toks[p.i] }
func (p *parser) at(k tokenKind) bool {
	return p.cur().kind == k
}

func (p *parser) errf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("cql: %d:%d: %s", t.line, t.col, fmt.Sprintf(format, args...))
}

// keyword reports whether the current token is the given case-insensitive
// keyword, consuming it if so.
func (p *parser) keyword(kw string) bool {
	if p.at(tokIdent) && strings.EqualFold(p.cur().text, kw) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return p.errf("expected %s, got %s", strings.ToUpper(kw), p.cur())
	}
	return nil
}

func (p *parser) expectPunct(s string) error {
	if p.at(tokPunct) && p.cur().text == s {
		p.i++
		return nil
	}
	return p.errf("expected %q, got %s", s, p.cur())
}

func (p *parser) ident() (string, error) {
	if !p.at(tokIdent) {
		return "", p.errf("expected identifier, got %s", p.cur())
	}
	t := p.cur()
	p.i++
	return t.text, nil
}

func (p *parser) integer() (int64, error) {
	neg := false
	if p.at(tokPunct) && p.cur().text == "-" {
		neg = true
		p.i++
	}
	if !p.at(tokNumber) {
		return 0, p.errf("expected integer, got %s", p.cur())
	}
	v, err := strconv.ParseInt(p.cur().text, 10, 64)
	if err != nil {
		return 0, p.errf("bad integer %q", p.cur().text)
	}
	p.i++
	if neg {
		v = -v
	}
	return v, nil
}

func (p *parser) float() (float64, error) {
	if !p.at(tokNumber) {
		return 0, p.errf("expected number, got %s", p.cur())
	}
	v, err := strconv.ParseFloat(p.cur().text, 64)
	if err != nil {
		return 0, p.errf("bad number %q", p.cur().text)
	}
	p.i++
	return v, nil
}

// aggSpecs maps CQL aggregate keywords to measure specs.
var aggSpecs = map[string]measure.Func{
	"count": measure.Count, "sum": measure.Sum, "min": measure.Min,
	"max": measure.Max, "avg": measure.Avg, "var": measure.Var,
	"stddev": measure.StdDev, "median": measure.Median,
	"distinct": measure.CountDistinct,
}

// exprNames lists the self-measure expression keywords.
var exprNames = map[string]bool{
	"ratio": true, "add": true, "sub": true, "mul": true, "ident": true,
}

// measureStmt parses: MEASURE name = body AT (grain) ;
func (p *parser) measureStmt() error {
	if err := p.expectKeyword("measure"); err != nil {
		return err
	}
	name, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.expectPunct("="); err != nil {
		return err
	}

	// The body determines the measure kind.
	switch {
	case p.keyword("rollup"):
		agg, src, err := p.aggOfMeasure()
		if err != nil {
			return err
		}
		grain, err := p.atGrain()
		if err != nil {
			return err
		}
		if err := p.w.AddRollup(name, grain, agg, src); err != nil {
			return err
		}
	case p.keyword("inherit"):
		if err := p.expectPunct("("); err != nil {
			return err
		}
		src, err := p.ident()
		if err != nil {
			return err
		}
		if err := p.expectPunct(")"); err != nil {
			return err
		}
		grain, err := p.atGrain()
		if err != nil {
			return err
		}
		if err := p.w.AddInherit(name, grain, src); err != nil {
			return err
		}
	case p.keyword("window"):
		agg, src, err := p.aggOfMeasure()
		if err != nil {
			return err
		}
		if err := p.expectKeyword("over"); err != nil {
			return err
		}
		window, err := p.windowClauses()
		if err != nil {
			return err
		}
		grain, err := p.atGrain()
		if err != nil {
			return err
		}
		if err := p.w.AddSliding(name, grain, agg, src, window...); err != nil {
			return err
		}
	default:
		if err := p.basicOrSelf(name); err != nil {
			return err
		}
	}
	return p.expectPunct(";")
}

// aggOfMeasure parses AGG(ident) where ident names a source measure.
func (p *parser) aggOfMeasure() (measure.Spec, string, error) {
	fn, err := p.ident()
	if err != nil {
		return measure.Spec{}, "", err
	}
	f, ok := aggSpecs[strings.ToLower(fn)]
	if !ok {
		return measure.Spec{}, "", p.errf("unknown aggregate %q", fn)
	}
	if err := p.expectPunct("("); err != nil {
		return measure.Spec{}, "", err
	}
	src, err := p.ident()
	if err != nil {
		return measure.Spec{}, "", err
	}
	if err := p.expectPunct(")"); err != nil {
		return measure.Spec{}, "", err
	}
	return measure.Spec{Func: f}, src, nil
}

// basicOrSelf parses AGG(attr|*), QUANTILE(rank, attr), or EXPR(m, ...),
// followed by AT (grain), and adds the measure.
func (p *parser) basicOrSelf(name string) error {
	fn, err := p.ident()
	if err != nil {
		return err
	}
	lower := strings.ToLower(fn)
	if err := p.expectPunct("("); err != nil {
		return err
	}

	switch {
	case lower == "quantile":
		rank, err := p.float()
		if err != nil {
			return err
		}
		if err := p.expectPunct(","); err != nil {
			return err
		}
		attr, err := p.ident()
		if err != nil {
			return err
		}
		if err := p.expectPunct(")"); err != nil {
			return err
		}
		grain, err := p.atGrain()
		if err != nil {
			return err
		}
		return p.w.AddBasic(name, grain, measure.Spec{Func: measure.Quantile, Arg: rank}, attr)

	case lower == "scale":
		k, err := p.float()
		if err != nil {
			return err
		}
		if err := p.expectPunct(","); err != nil {
			return err
		}
		src, err := p.ident()
		if err != nil {
			return err
		}
		if _, ok := p.w.Measure(src); !ok {
			return p.errf("SCALE references unknown measure %q", src)
		}
		if err := p.expectPunct(")"); err != nil {
			return err
		}
		grain, err := p.atGrain()
		if err != nil {
			return err
		}
		return p.w.AddSelf(name, grain, measure.Scale(k), src)

	case exprNames[lower]:
		var sources []string
		for {
			src, err := p.ident()
			if err != nil {
				return err
			}
			if _, ok := p.w.Measure(src); !ok {
				return p.errf("expression %s references unknown measure %q", strings.ToUpper(lower), src)
			}
			sources = append(sources, src)
			if p.at(tokPunct) && p.cur().text == "," {
				p.i++
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return err
		}
		expr, err := measure.ExprByName(lower)
		if err != nil {
			return err
		}
		grain, err := p.atGrain()
		if err != nil {
			return err
		}
		return p.w.AddSelf(name, grain, expr, sources...)

	default:
		f, ok := aggSpecs[lower]
		if !ok {
			return p.errf("unknown function %q (aggregate, expression, ROLLUP, INHERIT, or WINDOW expected)", fn)
		}
		var attr string
		if p.at(tokPunct) && p.cur().text == "*" {
			p.i++
			if f != measure.Count {
				return p.errf("only COUNT accepts *")
			}
		} else {
			attr, err = p.ident()
			if err != nil {
				return err
			}
			if _, isMeasure := p.w.Measure(attr); isMeasure {
				return p.errf("%s(%s) aggregates a measure; use ROLLUP %s(%s) or WINDOW %s(%s) OVER …",
					strings.ToUpper(lower), attr, strings.ToUpper(lower), attr, strings.ToUpper(lower), attr)
			}
			if _, ok := p.schema.AttrIndex(attr); !ok {
				return p.errf("unknown attribute %q", attr)
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return err
		}
		grain, err := p.atGrain()
		if err != nil {
			return err
		}
		return p.w.AddBasic(name, grain, measure.Spec{Func: f}, attr)
	}
}

// windowClauses parses attr(lo, hi) [, attr(lo, hi)]...
func (p *parser) windowClauses() ([]workflow.RangeAnn, error) {
	var out []workflow.RangeAnn
	for {
		attr, err := p.ident()
		if err != nil {
			return nil, err
		}
		ai, ok := p.schema.AttrIndex(attr)
		if !ok {
			return nil, p.errf("unknown attribute %q in window", attr)
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		lo, err := p.integer()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		hi, err := p.integer()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		out = append(out, workflow.RangeAnn{Attr: ai, Low: lo, High: hi})
		if p.at(tokPunct) && p.cur().text == "," {
			p.i++
			continue
		}
		return out, nil
	}
}

// atGrain parses: AT ( attr:level [, attr:level]... )
func (p *parser) atGrain() (cube.Grain, error) {
	if err := p.expectKeyword("at"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var specs []cube.GrainSpec
	for {
		attr, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		level, err := p.ident()
		if err != nil {
			return nil, err
		}
		specs = append(specs, cube.GrainSpec{Attr: attr, Level: level})
		if p.at(tokPunct) && p.cur().text == "," {
			p.i++
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	g, err := p.schema.MakeGrain(specs...)
	if err != nil {
		return nil, p.errf("%v", err)
	}
	return g, nil
}
