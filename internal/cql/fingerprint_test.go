package cql

import "testing"

// TestFingerprintReformatInvariant pins the property the plan cache
// depends on: the same query arriving as differently formatted or
// differently named CQL text maps to one fingerprint, while a genuinely
// different query does not.
func TestFingerprintReformatInvariant(t *testing.T) {
	s := testSchema(t)
	base, err := Fingerprint(s, weblogCQL)
	if err != nil {
		t.Fatal(err)
	}

	// Whitespace, comments, and case-insensitive keywords.
	reformatted := `
-- same weblog query, reformatted
measure m1 = median(pages) at (keyword:word, time:minute);
measure m2 = median(ads) at (keyword:word, time:hour);
measure m3 = ratio(m1, m2) at (keyword:word, time:minute);
measure m4 = window avg(m3) over time(-9, 0) at (keyword:word, time:minute);
`
	if fp, err := Fingerprint(s, reformatted); err != nil || fp != base {
		t.Errorf("reformatted query fingerprint = %s err %v, want %s", fp, err, base)
	}

	// Renamed measures: structurally identical, same fingerprint.
	renamed := `
MEASURE pages_med = MEDIAN(pages)  AT (keyword:word, time:minute);
MEASURE ads_med   = MEDIAN(ads)    AT (keyword:word, time:hour);
MEASURE rate      = RATIO(pages_med, ads_med) AT (keyword:word, time:minute);
MEASURE trend     = WINDOW AVG(rate) OVER time(-9, 0) AT (keyword:word, time:minute);
`
	if fp, err := Fingerprint(s, renamed); err != nil || fp != base {
		t.Errorf("renamed query fingerprint = %s err %v, want %s", fp, err, base)
	}

	// A genuinely different query must not collide.
	different := `
MEASURE m1 = MEDIAN(pages) AT (keyword:word, time:minute);
MEASURE m2 = MEDIAN(ads)   AT (keyword:word, time:hour);
`
	if fp, err := Fingerprint(s, different); err != nil || fp == base {
		t.Errorf("different query collided with the weblog fingerprint (err %v)", err)
	}

	// Round-trip through the printer: Format output re-fingerprints to
	// the same value.
	w, err := Parse(s, weblogCQL)
	if err != nil {
		t.Fatal(err)
	}
	if fp, err := Fingerprint(s, Format(w)); err != nil || fp != base {
		t.Errorf("printer round-trip fingerprint = %s err %v, want %s", fp, err, base)
	}
}
