package cql

import (
	"fmt"
	"strings"

	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/measure"
	"github.com/casm-project/casm/internal/workflow"
)

// Format renders a workflow as CQL text. Parse(Format(w)) reconstructs an
// equivalent workflow, which the golden tests verify.
func Format(w *workflow.Workflow) string {
	s := w.Schema()
	var b strings.Builder
	for _, m := range w.Measures() {
		fmt.Fprintf(&b, "MEASURE %s = ", m.Name)
		switch m.Kind {
		case workflow.Basic:
			if m.Agg.Func == measure.Quantile {
				fmt.Fprintf(&b, "QUANTILE(%g, %s)", m.Agg.Arg, s.Attr(m.InputAttr).Name())
			} else if m.InputAttr < 0 {
				fmt.Fprintf(&b, "%s(*)", strings.ToUpper(string(m.Agg.Func)))
			} else {
				fmt.Fprintf(&b, "%s(%s)", strings.ToUpper(string(m.Agg.Func)), s.Attr(m.InputAttr).Name())
			}
		case workflow.Self:
			if es := m.Expr.String(); strings.HasPrefix(es, "scale(") && len(m.Sources) == 1 {
				k := strings.TrimSuffix(strings.TrimPrefix(es, "scale("), ")")
				fmt.Fprintf(&b, "SCALE(%s, %s)", k, m.Sources[0])
			} else {
				fmt.Fprintf(&b, "%s(%s)", strings.ToUpper(es), strings.Join(m.Sources, ", "))
			}
		case workflow.Rollup:
			fmt.Fprintf(&b, "ROLLUP %s(%s)", strings.ToUpper(string(m.Agg.Func)), m.Sources[0])
		case workflow.Inherit:
			fmt.Fprintf(&b, "INHERIT(%s)", m.Sources[0])
		case workflow.Sliding:
			fmt.Fprintf(&b, "WINDOW %s(%s) OVER ", strings.ToUpper(string(m.Agg.Func)), m.Sources[0])
			for i, ann := range m.Window {
				if i > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "%s(%d, %d)", s.Attr(ann.Attr).Name(), ann.Low, ann.High)
			}
		}
		b.WriteString(" AT ")
		b.WriteString(formatGrain(s, m.Grain))
		b.WriteString(";\n")
	}
	return b.String()
}

func formatGrain(s *cube.Schema, g cube.Grain) string {
	var parts []string
	for i, li := range g {
		if li == s.Attr(i).AllIndex() {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s:%s", s.Attr(i).Name(), s.Attr(i).Level(li).Name))
	}
	if len(parts) == 0 {
		// A grain with every attribute at ALL still needs a clause; use
		// the first attribute's ALL level explicitly.
		parts = append(parts, fmt.Sprintf("%s:%s", s.Attr(0).Name(), cube.AllLevel))
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
