package iterx

import (
	"errors"
	"fmt"
	"slices"
	"testing"
)

// countingIter tracks Next/Close calls to verify the single-use contract
// mechanics of the Funcs adapter and the combinators' ownership.
type countingIter struct {
	vals     []int
	i        int
	nexts    int
	closes   int
	closeErr error
	failAt   int // Next index that errors (-1 = never)
}

func newCounting(vals ...int) *countingIter { return &countingIter{vals: vals, failAt: -1} }

func (c *countingIter) iter() Iter[int] {
	return New(func() (int, bool, error) {
		c.nexts++
		if c.failAt >= 0 && c.i == c.failAt {
			return 0, false, fmt.Errorf("injected at %d", c.i)
		}
		if c.i >= len(c.vals) {
			return 0, false, nil
		}
		v := c.vals[c.i]
		c.i++
		return v, true, nil
	}, func() error {
		c.closes++
		return c.closeErr
	})
}

func TestNextAfterExhaustionLatches(t *testing.T) {
	c := newCounting(1, 2)
	it := c.iter()
	got, err := Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got, []int{1, 2}) {
		t.Fatalf("got %v", got)
	}
	before := c.nexts
	// Second and third Next after exhaustion: ok=false, and the wrapped
	// next function is never invoked again.
	for i := 0; i < 3; i++ {
		if _, ok, err := it.Next(); ok || err != nil {
			t.Fatalf("Next after exhaustion: ok=%v err=%v", ok, err)
		}
	}
	if c.nexts != before {
		t.Fatalf("exhausted iterator re-invoked its source: %d -> %d calls", before, c.nexts)
	}
}

func TestNextAfterErrorLatches(t *testing.T) {
	c := newCounting(1, 2, 3)
	c.failAt = 1
	it := c.iter()
	if _, ok, err := it.Next(); !ok || err != nil {
		t.Fatalf("first: ok=%v err=%v", ok, err)
	}
	if _, ok, err := it.Next(); ok || err == nil {
		t.Fatalf("want error, got ok=%v err=%v", ok, err)
	}
	before := c.nexts
	if _, ok, err := it.Next(); ok || err != nil {
		t.Fatalf("Next after error must latch exhausted, got ok=%v err=%v", ok, err)
	}
	if c.nexts != before {
		t.Fatal("errored iterator re-invoked its source")
	}
}

func TestCloseIdempotent(t *testing.T) {
	c := newCounting(1)
	c.closeErr = errors.New("close failed")
	it := c.iter()
	if err := it.Close(); !errors.Is(err, c.closeErr) {
		t.Fatalf("first Close: %v", err)
	}
	if err := it.Close(); !errors.Is(err, c.closeErr) {
		t.Fatalf("second Close must return the first call's error, got %v", err)
	}
	if c.closes != 1 {
		t.Fatalf("close ran %d times, want 1", c.closes)
	}
	// Next after Close: exhausted, source untouched.
	before := c.nexts
	if _, ok, _ := it.Next(); ok {
		t.Fatal("Next after Close yielded a value")
	}
	if c.nexts != before {
		t.Fatal("Next after Close invoked the source")
	}
}

func TestMapStreamsAndOwnsSource(t *testing.T) {
	c := newCounting(1, 2, 3)
	it := Map(c.iter(), func(v int) (int, error) { return v * 10, nil })
	got, err := Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got, []int{10, 20, 30}) {
		t.Fatalf("got %v", got)
	}
	if c.closes != 1 {
		t.Fatalf("Map did not close its source exactly once: %d", c.closes)
	}
}

func TestMapPropagatesErrors(t *testing.T) {
	c := newCounting(1, 2)
	it := Map(c.iter(), func(v int) (int, error) {
		if v == 2 {
			return 0, errors.New("fn failed")
		}
		return v, nil
	})
	if _, err := Collect(it); err == nil {
		t.Fatal("want fn error")
	}
	if c.closes != 1 {
		t.Fatalf("source closed %d times, want 1 (Collect closes on error)", c.closes)
	}
}

func TestFilter(t *testing.T) {
	got, err := Collect(Filter(FromSlice([]int{1, 2, 3, 4, 5}), func(v int) bool { return v%2 == 1 }))
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got, []int{1, 3, 5}) {
		t.Fatalf("got %v", got)
	}
}

func TestChainConsumesInOrderAndClosesEagerly(t *testing.T) {
	a, b, c := newCounting(1, 2), newCounting(), newCounting(3)
	it := Chain(a.iter(), b.iter(), c.iter())
	if v, ok, _ := it.Next(); !ok || v != 1 {
		t.Fatalf("got %v %v", v, ok)
	}
	if v, ok, _ := it.Next(); !ok || v != 2 {
		t.Fatalf("got %v %v", v, ok)
	}
	// Pulling past a's end closes a (and empty b) before yielding from c.
	if v, ok, _ := it.Next(); !ok || v != 3 {
		t.Fatalf("got %v %v", v, ok)
	}
	if a.closes != 1 || b.closes != 1 {
		t.Fatalf("exhausted sources not closed eagerly: a=%d b=%d", a.closes, b.closes)
	}
	if _, ok, _ := it.Next(); ok {
		t.Fatal("chain not exhausted")
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if c.closes != 1 {
		t.Fatalf("tail source closed %d times", c.closes)
	}
}

func TestChainCloseMidStreamClosesRemainder(t *testing.T) {
	a, b := newCounting(1, 2), newCounting(3)
	it := Chain(a.iter(), b.iter())
	if _, _, err := it.Next(); err != nil {
		t.Fatal(err)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if a.closes != 1 || b.closes != 1 {
		t.Fatalf("mid-stream Close must close every source: a=%d b=%d", a.closes, b.closes)
	}
	if err := it.Close(); err != nil {
		t.Fatal("second Close must be a no-op")
	}
	if a.closes != 1 || b.closes != 1 {
		t.Fatal("second Close re-closed sources")
	}
}

func TestMergeSortedStable(t *testing.T) {
	cmp := func(a, b int) int { return a - b }
	a, b, c := newCounting(1, 4, 7), newCounting(2, 4, 8), newCounting(0, 9)
	it := Merge(cmp, a.iter(), b.iter(), c.iter())
	got, err := Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got, []int{0, 1, 2, 4, 4, 7, 8, 9}) {
		t.Fatalf("got %v", got)
	}
	if a.closes != 1 || b.closes != 1 || c.closes != 1 {
		t.Fatal("merge did not close all sources once")
	}
}

func TestMergeLazyRefill(t *testing.T) {
	// The source whose head was yielded is only re-pulled on the NEXT
	// call, so a handed-out value aliasing a reused buffer stays valid
	// while the caller holds it (the sortx contract).
	c := newCounting(1, 2)
	it := Merge(func(a, b int) int { return a - b }, c.iter())
	if _, ok, _ := it.Next(); !ok {
		t.Fatal("want value")
	}
	pullsAfterFirst := c.nexts
	if pullsAfterFirst != 1 {
		t.Fatalf("source pulled %d times before second Next, want 1 (lazy refill)", pullsAfterFirst)
	}
	if _, ok, _ := it.Next(); !ok {
		t.Fatal("want second value")
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeErrorPropagates(t *testing.T) {
	bad := newCounting(1, 2)
	bad.failAt = 1
	it := Merge(func(a, b int) int { return a - b }, bad.iter(), FromSlice([]int{5}))
	if _, err := Collect(it); err == nil {
		t.Fatal("want source error")
	}
}

func TestEmptyAndFromSlice(t *testing.T) {
	if vs, err := Collect(Empty[string]()); err != nil || len(vs) != 0 {
		t.Fatalf("Empty: %v %v", vs, err)
	}
	vs, err := Collect(FromSlice([]string{"a", "b"}))
	if err != nil || !slices.Equal(vs, []string{"a", "b"}) {
		t.Fatalf("FromSlice: %v %v", vs, err)
	}
}
