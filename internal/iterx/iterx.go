// Package iterx defines the streaming data plane's iterator abstraction:
// a pull-based, single-use, explicitly closed stream of values. Every
// stage of the pipelined engine — record sources, the shuffle's grouped
// output, the job's result stream — speaks this shape, so stages compose
// without materializing between them and peak memory is bounded by what
// is in flight, not by the dataset.
//
// # Contract
//
// An Iter is SINGLE-USE: obtain it, consume it with Next until ok=false
// (or an error), Close it, and never touch it again. In detail:
//
//   - Next returns the next value. After it has returned ok=false or a
//     non-nil error the stream is exhausted: every subsequent Next must
//     keep returning ok=false (it must not panic, restart, or invent
//     values), but callers must not rely on anything beyond that.
//   - Close releases the stream's resources (descriptors, buffers,
//     goroutine-backed stages) and is IDEMPOTENT — calling it again is a
//     no-op returning the first call's error. Close may be called before
//     exhaustion; the stream then tears down early (an in-flight
//     producer is cancelled and drained). Every Iter must be Closed,
//     including on error paths — defer it.Close() at acquisition.
//   - Ownership: unless an implementation documents otherwise, the value
//     returned by Next is only guaranteed valid until the following Next
//     or Close call (sources that decode into reused buffers hand out
//     aliases). Callers that retain a value must copy what it references.
//   - Iterators are single-goroutine; wrap externally to share.
//
// A repo lint (internal/lint) enforces the single-use discipline at the
// call sites the compiler cannot: no internal caller re-uses an iterator
// after consuming or closing it.
package iterx

// Iter is a single-use pull iterator over values of type T. See the
// package comment for the full contract.
type Iter[T any] interface {
	// Next returns the next value; ok=false means the stream is
	// exhausted (err may accompany it). The returned value is only
	// guaranteed valid until the following Next or Close call.
	Next() (v T, ok bool, err error)
	// Close releases the stream's resources. Idempotent; returns the
	// first call's error on repeats.
	Close() error
}

// Funcs adapts a next/close function pair into an Iter, providing the
// exhaustion latch and Close idempotency so implementations only write
// the interesting parts. close may be nil (no resources).
type Funcs[T any] struct {
	NextFn  func() (T, bool, error)
	CloseFn func() error

	done     bool
	closed   bool
	closeErr error
}

// New wraps next and close into an Iter. Exhaustion (ok=false or error
// from next) latches: next is never called again afterwards. Close calls
// close once; repeats return the first error.
func New[T any](next func() (T, bool, error), close func() error) *Funcs[T] {
	return &Funcs[T]{NextFn: next, CloseFn: close}
}

// Next implements Iter.
func (f *Funcs[T]) Next() (T, bool, error) {
	var zero T
	if f.done || f.closed {
		return zero, false, nil
	}
	v, ok, err := f.NextFn()
	if !ok || err != nil {
		f.done = true
		return zero, false, err
	}
	return v, true, nil
}

// Close implements Iter.
func (f *Funcs[T]) Close() error {
	if f.closed {
		return f.closeErr
	}
	f.closed = true
	if f.CloseFn != nil {
		f.closeErr = f.CloseFn()
	}
	return f.closeErr
}

// Empty returns an exhausted iterator.
func Empty[T any]() Iter[T] {
	return New[T](func() (T, bool, error) { var z T; return z, false, nil }, nil)
}

// FromSlice returns an iterator over s. The yielded values alias s; the
// caller keeps ownership of the backing array.
func FromSlice[T any](s []T) Iter[T] {
	i := 0
	return New(func() (T, bool, error) {
		var zero T
		if i >= len(s) {
			return zero, false, nil
		}
		v := s[i]
		i++
		return v, true, nil
	}, nil)
}

// Collect drains it into a slice and closes it, returning the first
// error from either. Convenience for tests and cold paths — hot paths
// stream instead of collecting.
func Collect[T any](it Iter[T]) ([]T, error) {
	var out []T
	for {
		v, ok, err := it.Next()
		if err != nil {
			it.Close()
			return out, err
		}
		if !ok {
			return out, it.Close()
		}
		out = append(out, v)
	}
}

// Map returns an iterator yielding fn of each of src's values. The
// mapped iterator consumes src and owns it: closing the result closes
// src. fn runs on the pull, so per-value work is deferred until the
// consumer asks — the composition streams end to end. Ownership of the
// yielded value follows fn: if it returns memory derived from its
// argument, the result is valid only until the next pull, like the
// source's.
func Map[A, B any](src Iter[A], fn func(A) (B, error)) Iter[B] {
	return New(func() (B, bool, error) {
		var zero B
		a, ok, err := src.Next()
		if err != nil || !ok {
			return zero, false, err
		}
		b, err := fn(a)
		if err != nil {
			return zero, false, err
		}
		return b, true, nil
	}, src.Close)
}

// Filter returns an iterator yielding only src's values for which keep
// is true. Owns src like Map.
func Filter[T any](src Iter[T], keep func(T) bool) Iter[T] {
	return New(func() (T, bool, error) {
		for {
			v, ok, err := src.Next()
			if err != nil || !ok {
				var zero T
				return zero, false, err
			}
			if keep(v) {
				return v, true, nil
			}
		}
	}, src.Close)
}

// Chain concatenates sources: all of the first, then all of the second,
// and so on. It owns every source — each is closed as it exhausts, and
// closing the chain closes the remainder (first error wins). A source
// error stops the chain.
func Chain[T any](sources ...Iter[T]) Iter[T] {
	i := 0
	var closeRest func() error
	closeRest = func() error {
		var first error
		for ; i < len(sources); i++ {
			if err := sources[i].Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	return New(func() (T, bool, error) {
		var zero T
		for i < len(sources) {
			v, ok, err := sources[i].Next()
			if err != nil {
				return zero, false, err
			}
			if ok {
				return v, true, nil
			}
			if err := sources[i].Close(); err != nil {
				return zero, false, err
			}
			i++
		}
		return zero, false, nil
	}, closeRest)
}

// Merge combines pre-sorted sources into one sorted stream (k-way merge
// without a heap — linear scan per pull, right for small k; the external
// sort keeps its heap for large run counts). cmp follows slices.SortFunc
// (negative when a < b); ties break toward the earlier source, so the
// merge is stable across sources. Owns every source.
//
// Ownership: a yielded value is only valid until the following Next, as
// sources may reuse buffers (the sortx contract) — Merge hands values
// through without copying and defers each source's refill until after
// its value was yielded.
func Merge[T any](cmp func(a, b T) int, sources ...Iter[T]) Iter[T] {
	heads := make([]T, len(sources))
	has := make([]bool, len(sources))
	primed := false
	pending := -1 // source whose head was handed out and needs a refill
	closeAll := func() error {
		var first error
		for _, s := range sources {
			if err := s.Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	refill := func(i int) error {
		v, ok, err := sources[i].Next()
		if err != nil {
			return err
		}
		heads[i], has[i] = v, ok
		return nil
	}
	return New(func() (T, bool, error) {
		var zero T
		if !primed {
			primed = true
			for i := range sources {
				if err := refill(i); err != nil {
					return zero, false, err
				}
			}
		}
		if pending >= 0 {
			if err := refill(pending); err != nil {
				return zero, false, err
			}
			pending = -1
		}
		best := -1
		for i := range heads {
			if !has[i] {
				continue
			}
			if best < 0 || cmp(heads[i], heads[best]) < 0 {
				best = i
			}
		}
		if best < 0 {
			return zero, false, nil
		}
		pending = best
		return heads[best], true, nil
	}, closeAll)
}
