package optimizer

import (
	"fmt"

	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/distkey"
	"github.com/casm-project/casm/internal/mr"
	"github.com/casm-project/casm/internal/stats"
)

// Section V: run-time skew handling. The mappers sample the records they
// acquire, a simulated dispatch computes the workload each reducer would
// receive under a candidate plan, and the plan with the lowest maximal
// workload wins.

// SimulatedDispatch runs the mapper's key-generation logic over a sample
// and returns the number of sampled pairs each reducer would receive
// (including overlap duplication). partition may be nil for the default
// hash partitioner.
func SimulatedDispatch(s *cube.Schema, key distkey.Key, cf int64, sample []cube.Record,
	numReducers int, partition func([]byte, int) int) ([]float64, error) {
	if partition == nil {
		partition = mr.HashPartition
	}
	bm, err := distkey.NewBlockMapper(s, key, cf)
	if err != nil {
		return nil, err
	}
	loads := make([]float64, numReducers)
	ss := bm.NewSession()
	for _, rec := range sample {
		for _, block := range ss.Blocks(rec) {
			loads[partition(block, numReducers)]++
		}
	}
	return loads, nil
}

// DetectSkew reports whether the estimated loads are imbalanced: the
// heaviest reducer exceeds threshold × the mean (2.0 is a reasonable
// default; uniform data stays near 1).
func DetectSkew(loads []float64, threshold float64) bool {
	if threshold <= 1 {
		threshold = 2
	}
	return stats.SkewRatio(loads) > threshold
}

// SamplingChoice is the outcome of ChooseBySampling.
type SamplingChoice struct {
	Plan Plan
	// MaxLoads holds each candidate's simulated heaviest load (sampled
	// pairs), aligned with Plan.Candidates.
	MaxLoads []float64
	// SampleSize is the number of records dispatched per candidate.
	SampleSize int
}

// ChooseBySampling re-ranks the model's candidate plans by simulated
// dispatch over a sample and returns the plan whose heaviest simulated
// reducer load is smallest (ties broken by the model's prediction, i.e.
// candidate order). This is the paper's "Sampling" strategy, which finds
// the best plan with or without data skew.
func ChooseBySampling(s *cube.Schema, model Plan, sample []cube.Record,
	numReducers int, partition func([]byte, int) int) (SamplingChoice, error) {
	if len(model.Candidates) == 0 {
		return SamplingChoice{}, fmt.Errorf("optimizer: plan has no candidates")
	}
	if len(sample) == 0 {
		return SamplingChoice{Plan: model, SampleSize: 0}, nil
	}
	choice := SamplingChoice{Plan: model, SampleSize: len(sample)}
	best := -1
	var bestMax float64
	for i, c := range model.Candidates {
		loads, err := SimulatedDispatch(s, c.Key, c.ClusteringFactor, sample, numReducers, partition)
		if err != nil {
			return SamplingChoice{}, err
		}
		mx := 0.0
		for _, l := range loads {
			if l > mx {
				mx = l
			}
		}
		choice.MaxLoads = append(choice.MaxLoads, mx)
		// Replace the incumbent only on a clear (>3%) win: candidates are
		// ordered by the model's prediction, so near-ties defer to the
		// model rather than to sampling noise.
		if best < 0 || mx < 0.97*bestMax {
			best, bestMax = i, mx
		}
	}
	win := model.Candidates[best]
	choice.Plan = Plan{
		Key:               win.Key,
		ClusteringFactor:  win.ClusteringFactor,
		PredictedWorkload: win.Workload,
		Blocks:            win.Blocks,
		Candidates:        model.Candidates,
	}
	return choice, nil
}

// PlanCache remembers distribution keys that worked well. "As long as the
// value distribution of the original data set does not change, a
// distribution key which was previously identified as a good one will
// still be a good candidate, as long as it is feasible for the given
// query" — feasibility for a new query holds when the cached key
// generalizes the new query's minimal key (Theorem 1).
type PlanCache struct {
	entries []cachedPlan
}

type cachedPlan struct {
	key distkey.Key
	cf  int64
}

// Store remembers a plan that executed well.
func (c *PlanCache) Store(key distkey.Key, cf int64) {
	for _, e := range c.entries {
		if e.key.Equal(key) && e.cf == cf {
			return
		}
	}
	c.entries = append(c.entries, cachedPlan{key: key.Clone(), cf: cf})
}

// Len reports how many plans are cached.
func (c *PlanCache) Len() int { return len(c.entries) }

// Lookup returns a cached plan feasible for the query with the given
// minimal key, if any.
func (c *PlanCache) Lookup(s *cube.Schema, minimal distkey.Key) (distkey.Key, int64, bool) {
	for _, e := range c.entries {
		if distkey.Generalizes(s, e.key, minimal) {
			return e.key.Clone(), e.cf, true
		}
	}
	return distkey.Key{}, 0, false
}
