// Package optimizer chooses the execution plan — a single-annotated
// distribution key plus a clustering factor — that minimizes the expected
// query response time, following the paper's Section IV: the response time
// is proportional to the heaviest reducer workload, estimated with the
// order-statistic Formulas (2) and (4). Section V's run-time skew handling
// (sampled simulated dispatch, minimum-blocks heuristics, and a plan
// cache) lives in this package too.
package optimizer

import (
	"fmt"
	"sort"

	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/distkey"
	"github.com/casm-project/casm/internal/stats"
	"github.com/casm-project/casm/internal/workflow"
)

// Plan is a chosen execution plan.
type Plan struct {
	// Key is the distribution key (at most one annotated attribute).
	Key distkey.Key
	// ClusteringFactor merges that many neighbouring key regions per
	// block along the annotated attribute (1 when not overlapping).
	ClusteringFactor int64
	// PredictedWorkload is the model's expected heaviest reducer
	// workload, in records.
	PredictedWorkload float64
	// Blocks is the number of distribution blocks the plan produces.
	Blocks int64
	// Candidates lists every alternative the optimizer scored, best
	// first, for EXPLAIN output and for the sampling-based chooser.
	Candidates []Candidate
}

// Candidate is one scored alternative.
type Candidate struct {
	Key              distkey.Key
	ClusteringFactor int64
	Workload         float64
	Blocks           int64
}

// Config parameterizes the optimizer.
type Config struct {
	// NumReducers is the paper's m.
	NumReducers int
	// TotalRecords is the paper's N (dataset cardinality, known or
	// estimated from file sizes).
	TotalRecords int64
	// MinBlocksPerReducer, when > 0, rejects clustering factors that
	// leave fewer than this many blocks per reducer — the paper's
	// "2Blocks"/"4Blocks" skew heuristic.
	MinBlocksPerReducer int64
	// MaxCF caps the clustering-factor search (0 = the annotated
	// attribute's cardinality at the key level).
	MaxCF int64
}

func (c Config) validate() error {
	if c.NumReducers < 1 {
		return fmt.Errorf("optimizer: NumReducers %d < 1", c.NumReducers)
	}
	if c.TotalRecords < 1 {
		return fmt.Errorf("optimizer: TotalRecords %d < 1", c.TotalRecords)
	}
	return nil
}

// Optimize derives the minimal feasible key for the workflow and picks the
// (key, cf) pair minimizing the modeled heaviest workload.
//
// Candidate generation follows Sections III-B.2 and IV-B: the minimal key
// may annotate several attributes; execution wants a single annotation, so
// for each annotated attribute X the optimizer forms the candidate that
// keeps X annotated (at its minimal level and at every coarser non-ALL
// level, with conservatively converted annotations) and rolls every
// *other annotated* attribute up to ALL (unannotated attributes stay at
// their minimal — finest feasible — level, which Formula (2) always
// prefers). The fully non-overlapping fallback that rolls every annotated
// attribute to ALL is also scored.
func Optimize(w *workflow.Workflow, cfg Config) (Plan, error) {
	if err := cfg.validate(); err != nil {
		return Plan{}, err
	}
	minimal, _, err := distkey.Derive(w)
	if err != nil {
		return Plan{}, err
	}
	s := w.Schema()
	keys := CandidateKeys(s, minimal)
	var cands []Candidate
	for _, k := range keys {
		c := scoreKey(s, k, cfg)
		cands = append(cands, c)
		// Diversify the clustering factor (Section V): the sampling-based
		// chooser needs candidates with "significantly different values of
		// the clustering factor" because skewed data can shift the optimum
		// away from the uniform model's choice. A geometric ladder (with
		// two intermediate steps per octave) brackets any skew optimum
		// within ~⅓ of its value.
		if len(c.Key.AnnotatedAttrs()) == 1 {
			x := c.Key.AnnotatedAttrs()[0]
			card := s.Attr(x).CardAt(c.Key.Grain[x])
			nG := clampInt64(s.NumRegions(c.Key.Grain))
			seen := map[int64]bool{c.ClusteringFactor: true}
			for base := int64(1); base <= card; base *= 2 {
				for _, cf := range []int64{base, base + base/2} {
					if cf < 1 || cf > card || seen[cf] {
						continue
					}
					seen[cf] = true
					blocks := nG / cf
					if blocks < 1 {
						blocks = 1
					}
					if cfg.MinBlocksPerReducer > 0 && blocks < cfg.MinBlocksPerReducer*int64(cfg.NumReducers) {
						continue // honor the 2Blocks/4Blocks heuristic
					}
					cands = append(cands, Candidate{
						Key:              c.Key,
						ClusteringFactor: cf,
						Workload:         PredictWorkload(s, c.Key, cf, cfg),
						Blocks:           blocks,
					})
				}
			}
		}
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].Workload < cands[j].Workload })
	best := cands[0]
	return Plan{
		Key:               best.Key,
		ClusteringFactor:  best.ClusteringFactor,
		PredictedWorkload: best.Workload,
		Blocks:            best.Blocks,
		Candidates:        cands,
	}, nil
}

// CandidateKeys enumerates the feasible single-annotated keys derived
// from the minimal key (see Optimize). The minimal key itself is included
// when it already has at most one annotation.
func CandidateKeys(s *cube.Schema, minimal distkey.Key) []distkey.Key {
	annotated := minimal.AnnotatedAttrs()
	if len(annotated) == 0 {
		return []distkey.Key{minimal}
	}
	var out []distkey.Key
	for _, x := range annotated {
		// Roll the other annotated attributes up to ALL.
		k := minimal.Clone()
		for _, y := range annotated {
			if y != x {
				k = distkey.RollUpAttr(s, k, y)
			}
		}
		// Keep X at its minimal level and also offer every coarser
		// non-ALL level (diversified candidates, Section V).
		for level := k.Grain[x]; level < s.Attr(x).AllIndex(); level++ {
			out = append(out, distkey.CoarsenAttr(s, k, x, level))
		}
	}
	// Fully non-overlapping fallback: every annotated attribute at ALL.
	k := minimal.Clone()
	for _, y := range annotated {
		k = distkey.RollUpAttr(s, k, y)
	}
	out = append(out, k)
	return out
}

// ScoreKey scores one explicit candidate key, choosing its optimal
// clustering factor; the engine uses it when a key is forced externally.
func ScoreKey(s *cube.Schema, k distkey.Key, cfg Config) (Candidate, error) {
	if err := cfg.validate(); err != nil {
		return Candidate{}, err
	}
	return scoreKey(s, k, cfg), nil
}

// scoreKey finds the best clustering factor for one candidate key and
// returns its modeled workload.
func scoreKey(s *cube.Schema, k distkey.Key, cfg Config) Candidate {
	nG := clampInt64(s.NumRegions(k.Grain))
	ann := k.AnnotatedAttrs()
	if len(ann) == 0 {
		return Candidate{
			Key:              k,
			ClusteringFactor: 1,
			Workload:         stats.HeaviestWorkload(int(cfg.TotalRecords), int(nG), cfg.NumReducers),
			Blocks:           nG,
		}
	}
	x := ann[0]
	d := k.Anns[x].Width()
	annCard := s.Attr(x).CardAt(k.Grain[x])
	maxCF := cfg.MaxCF
	if maxCF <= 0 || maxCF > annCard {
		maxCF = annCard
	}
	if cfg.MinBlocksPerReducer > 0 {
		// Keep at least MinBlocksPerReducer · m blocks: cf ≤ nG / (that).
		cap := nG / (cfg.MinBlocksPerReducer * int64(cfg.NumReducers))
		if cap < 1 {
			cap = 1
		}
		if maxCF > cap {
			maxCF = cap
		}
	}
	cf, w := stats.OptimalClusteringFactor(int(cfg.TotalRecords), int(nG), cfg.NumReducers, int(d), int(maxCF))
	blocks := nG / int64(cf)
	if blocks < 1 {
		blocks = 1
	}
	return Candidate{Key: k, ClusteringFactor: int64(cf), Workload: w, Blocks: blocks}
}

// PredictWorkload evaluates the cost model for an explicit (key, cf)
// pair; the clustering-factor benchmark uses it to overlay the analytic
// prediction on the measured curve (Figure 4(c)).
func PredictWorkload(s *cube.Schema, k distkey.Key, cf int64, cfg Config) float64 {
	nG := clampInt64(s.NumRegions(k.Grain))
	ann := k.AnnotatedAttrs()
	if len(ann) == 0 {
		return stats.HeaviestWorkload(int(cfg.TotalRecords), int(nG), cfg.NumReducers)
	}
	d := k.Anns[ann[0]].Width()
	return stats.OverlapHeaviestWorkload(int(cfg.TotalRecords), int(nG), cfg.NumReducers, int(d), int(cf))
}

func clampInt64(v int64) int64 {
	const max = int64(1) << 40 // plenty; avoids int overflow on conversion
	if v > max {
		return max
	}
	return v
}

// Explain renders the plan for humans.
func (p Plan) Explain(s *cube.Schema) string {
	out := fmt.Sprintf("plan: key=%s cf=%d blocks=%d predicted-heaviest=%.0f records\n",
		p.Key.Format(s), p.ClusteringFactor, p.Blocks, p.PredictedWorkload)
	for i, c := range p.Candidates {
		out += fmt.Sprintf("  cand[%d]: key=%s cf=%d blocks=%d workload=%.0f\n",
			i, c.Key.Format(s), c.ClusteringFactor, c.Blocks, c.Workload)
	}
	return out
}
