package optimizer

import (
	"fmt"
	"testing"

	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/distkey"
)

func testPlan(s *cube.Schema, cf int64) Plan {
	k := distkey.FromGrain(s.GrainAll())
	return Plan{
		Key: k, ClusteringFactor: cf, PredictedWorkload: float64(cf), Blocks: 10,
		Candidates: []Candidate{{Key: k, ClusteringFactor: cf, Workload: float64(cf), Blocks: 10}},
	}
}

func TestDecisionCacheHitMissCounters(t *testing.T) {
	s := cube.MustSchema(
		cube.MustAttribute("a", cube.Numeric, 8, cube.Level{Name: "v", Span: 1}),
	)
	c := NewDecisionCache(4)
	if _, _, ok := c.Get("k1"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("k1", testPlan(s, 3), true)
	plan, sampled, ok := c.Get("k1")
	if !ok || !sampled || plan.ClusteringFactor != 3 {
		t.Fatalf("Get(k1) = cf %d sampled %v ok %v, want 3 true true", plan.ClusteringFactor, sampled, ok)
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", c.Hits(), c.Misses())
	}
	// Returned plans are clones: mutating one must not corrupt the cache.
	plan.ClusteringFactor = 99
	plan.Candidates[0].Workload = -1
	again, _, _ := c.Get("k1")
	if again.ClusteringFactor != 3 || again.Candidates[0].Workload != 3 {
		t.Error("caller mutation leaked into the cached plan")
	}
}

func TestDecisionCacheLRUBound(t *testing.T) {
	s := cube.MustSchema(
		cube.MustAttribute("a", cube.Numeric, 8, cube.Level{Name: "v", Span: 1}),
	)
	c := NewDecisionCache(3)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), testPlan(s, int64(i+1)), false)
	}
	// Touch k0 so k1 becomes the least recently used, then overflow.
	c.Get("k0")
	c.Put("k3", testPlan(s, 4), false)
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	if _, _, ok := c.Get("k1"); ok {
		t.Error("LRU entry k1 survived eviction")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, _, ok := c.Get(k); !ok {
			t.Errorf("entry %s evicted unexpectedly", k)
		}
	}
}

func TestDecisionCacheDefaultCapacityAndOverwrite(t *testing.T) {
	s := cube.MustSchema(
		cube.MustAttribute("a", cube.Numeric, 8, cube.Level{Name: "v", Span: 1}),
	)
	c := NewDecisionCache(0)
	c.Put("k", testPlan(s, 1), false)
	c.Put("k", testPlan(s, 7), true) // overwrite in place, no duplicate entry
	if c.Len() != 1 {
		t.Fatalf("Len = %d after overwrite, want 1", c.Len())
	}
	plan, sampled, ok := c.Get("k")
	if !ok || plan.ClusteringFactor != 7 || !sampled {
		t.Errorf("overwrite not visible: cf %d sampled %v ok %v", plan.ClusteringFactor, sampled, ok)
	}
}

func TestDecisionKeySensitivity(t *testing.T) {
	base := DecisionKey("fp", "tag", 100, Config{NumReducers: 4}, 0, 2000, 1)
	for name, other := range map[string]string{
		"workflow":   DecisionKey("fp2", "tag", 100, Config{NumReducers: 4}, 0, 2000, 1),
		"dataset":    DecisionKey("fp", "tag2", 100, Config{NumReducers: 4}, 0, 2000, 1),
		"records":    DecisionKey("fp", "tag", 101, Config{NumReducers: 4}, 0, 2000, 1),
		"reducers":   DecisionKey("fp", "tag", 100, Config{NumReducers: 8}, 0, 2000, 1),
		"minblocks":  DecisionKey("fp", "tag", 100, Config{NumReducers: 4, MinBlocksPerReducer: 2}, 0, 2000, 1),
		"skew":       DecisionKey("fp", "tag", 100, Config{NumReducers: 4}, 1, 2000, 1),
		"samplesize": DecisionKey("fp", "tag", 100, Config{NumReducers: 4}, 0, 500, 1),
		"seed":       DecisionKey("fp", "tag", 100, Config{NumReducers: 4}, 0, 2000, 2),
	} {
		if other == base {
			t.Errorf("DecisionKey insensitive to %s", name)
		}
	}
	if again := DecisionKey("fp", "tag", 100, Config{NumReducers: 4}, 0, 2000, 1); again != base {
		t.Error("DecisionKey not deterministic")
	}
}
