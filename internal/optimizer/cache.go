package optimizer

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
)

// DecisionCache is a bounded, keyed cache of complete optimizer decisions.
// Where PlanCache (Section V) remembers only (key, cf) pairs and matches
// by key generalization, DecisionCache memoizes the entire planning
// outcome — key, clustering factor, candidate scores — under an exact
// string key built from the canonical workflow fingerprint, the dataset
// identity, and every planning knob that influences the decision. A hit
// therefore skips candidate enumeration, scoring, and skew sampling
// entirely; it is the cache that makes repeated or structurally identical
// queries plan in ~0 time (ROADMAP's casmserve plan-cache bullet).
//
// Entries evict in LRU order once the capacity is reached. The cache is
// safe for concurrent use and hands out defensive clones, so callers may
// mutate a returned Plan freely.
type DecisionCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element

	hits   atomic.Int64
	misses atomic.Int64
}

// DefaultDecisionCacheSize bounds a DecisionCache built with capacity <= 0.
const DefaultDecisionCacheSize = 256

type decisionEntry struct {
	key     string
	plan    Plan
	sampled bool
}

// NewDecisionCache returns an empty cache holding at most capacity
// decisions (DefaultDecisionCacheSize when capacity <= 0).
func NewDecisionCache(capacity int) *DecisionCache {
	if capacity <= 0 {
		capacity = DefaultDecisionCacheSize
	}
	return &DecisionCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// DecisionKey builds the cache key for one planning decision. Every input
// that can change the optimizer's output must appear here: the workflow's
// structural fingerprint, the dataset identity (record count — the model's
// N — plus a caller-supplied dataset tag), and the planning knobs. Knobs
// that only affect execution (transport, sort mode, morsels) are deliberately
// absent: they do not alter the chosen plan.
func DecisionKey(workflowFP, datasetTag string, numRecords int64, cfg Config, skewMode, sampleSize int, seed int64) string {
	return fmt.Sprintf("wf=%s|ds=%s|n=%d|m=%d|minb=%d|maxcf=%d|skew=%d|samp=%d|seed=%d",
		workflowFP, datasetTag, numRecords,
		cfg.NumReducers, cfg.MinBlocksPerReducer, cfg.MaxCF, skewMode, sampleSize, seed)
}

// Get returns the cached decision for key, cloning the plan so the caller
// owns it. The second result reports whether skew sampling contributed to
// the original decision.
func (c *DecisionCache) Get(key string) (Plan, bool, bool) {
	c.mu.Lock()
	el, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return Plan{}, false, false
	}
	c.order.MoveToFront(el)
	e := el.Value.(*decisionEntry)
	plan := clonePlan(e.plan)
	sampled := e.sampled
	c.mu.Unlock()
	c.hits.Add(1)
	return plan, sampled, true
}

// Put stores a decision under key, evicting the least recently used entry
// when full. The plan is cloned on the way in, so later caller mutations
// cannot corrupt the cache.
func (c *DecisionCache) Put(key string, plan Plan, sampled bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*decisionEntry).plan = clonePlan(plan)
		el.Value.(*decisionEntry).sampled = sampled
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&decisionEntry{key: key, plan: clonePlan(plan), sampled: sampled})
	for len(c.entries) > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*decisionEntry).key)
	}
}

// Len returns the number of cached decisions.
func (c *DecisionCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Hits returns the number of cache hits since construction.
func (c *DecisionCache) Hits() int64 { return c.hits.Load() }

// Misses returns the number of cache misses since construction.
func (c *DecisionCache) Misses() int64 { return c.misses.Load() }

func clonePlan(p Plan) Plan {
	out := p
	out.Key = p.Key.Clone()
	out.Candidates = make([]Candidate, len(p.Candidates))
	for i, cand := range p.Candidates {
		out.Candidates[i] = cand
		out.Candidates[i].Key = cand.Key.Clone()
	}
	return out
}
