package optimizer

import (
	"math/rand"
	"testing"

	"github.com/casm-project/casm/internal/cube"
	"github.com/casm-project/casm/internal/distkey"
	"github.com/casm-project/casm/internal/measure"
	"github.com/casm-project/casm/internal/workflow"
)

func testSchema(t testing.TB) *cube.Schema {
	t.Helper()
	return cube.MustSchema(
		cube.MustAttribute("k", cube.Nominal, 1000,
			cube.Level{Name: "word", Span: 1},
			cube.Level{Name: "group", Span: 50},
		),
		cube.MustAttribute("v", cube.Numeric, 256,
			cube.Level{Name: "value", Span: 1},
			cube.Level{Name: "band", Span: 16},
		),
		cube.TimeAttribute("t", 20),
	)
}

// slidingWorkflow has a sliding window on t and (optionally) one on v, so
// the minimal key annotates one or two attributes.
func slidingWorkflow(t testing.TB, twoWindows bool) *workflow.Workflow {
	t.Helper()
	s := testSchema(t)
	w := workflow.New(s)
	g := s.MustGrain(cube.GrainSpec{Attr: "v", Level: "value"}, cube.GrainSpec{Attr: "t", Level: "hour"})
	ti, _ := s.AttrIndex("t")
	vi, _ := s.AttrIndex("v")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(w.AddBasic("b", g, measure.Spec{Func: measure.Sum}, "v"))
	must(w.AddSliding("slT", g, measure.Spec{Func: measure.Avg}, "b",
		workflow.RangeAnn{Attr: ti, Low: -5, High: 0}))
	if twoWindows {
		must(w.AddSliding("slV", g, measure.Spec{Func: measure.Avg}, "b",
			workflow.RangeAnn{Attr: vi, Low: -2, High: 2}))
	}
	return w
}

func noSiblingWorkflow(t testing.TB) *workflow.Workflow {
	t.Helper()
	s := testSchema(t)
	w := workflow.New(s)
	g := s.MustGrain(cube.GrainSpec{Attr: "k", Level: "word"}, cube.GrainSpec{Attr: "t", Level: "hour"})
	if err := w.AddBasic("b", g, measure.Spec{Func: measure.Count}, ""); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestOptimizeNonOverlapping(t *testing.T) {
	w := noSiblingWorkflow(t)
	plan, err := Optimize(w, Config{NumReducers: 50, TotalRecords: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Key.IsOverlapping() || plan.ClusteringFactor != 1 {
		t.Fatalf("plan = %s cf=%d", plan.Key.Format(w.Schema()), plan.ClusteringFactor)
	}
	if len(plan.Candidates) != 1 {
		t.Errorf("candidates = %d, want 1 (the minimal key)", len(plan.Candidates))
	}
	if plan.PredictedWorkload < 1_000_000/50 {
		t.Errorf("predicted workload %v below perfect balance", plan.PredictedWorkload)
	}
}

func TestOptimizeSingleWindow(t *testing.T) {
	w := slidingWorkflow(t, false)
	s := w.Schema()
	plan, err := Optimize(w, Config{NumReducers: 50, TotalRecords: 10_000_000})
	if err != nil {
		t.Fatal(err)
	}
	ti, _ := s.AttrIndex("t")
	if got := plan.Key.AnnotatedAttrs(); len(got) != 1 || got[0] != ti {
		// The non-overlapping fallback could also win; it must then be at ALL on t.
		if !plan.Key.IsOverlapping() {
			t.Logf("optimizer chose non-overlapping fallback: %s", plan.Key.Format(s))
		} else {
			t.Fatalf("unexpected annotation set %v for key %s", got, plan.Key.Format(s))
		}
	}
	if plan.ClusteringFactor < 1 {
		t.Fatalf("cf = %d", plan.ClusteringFactor)
	}
	// Candidates include the hour-level annotated key, coarser day-level
	// variant, and the non-overlapping fallback.
	if len(plan.Candidates) < 3 {
		t.Errorf("candidates = %d, want >= 3", len(plan.Candidates))
	}
	// The chosen plan must beat cf=1 on the same key when overlapping.
	if plan.Key.IsOverlapping() && plan.ClusteringFactor > 1 {
		w1 := PredictWorkload(s, plan.Key, 1, Config{NumReducers: 50, TotalRecords: 10_000_000})
		if plan.PredictedWorkload >= w1 {
			t.Errorf("optimal cf workload %v not better than cf=1 %v", plan.PredictedWorkload, w1)
		}
	}
}

func TestOptimizeTwoWindowsProducesSingleAnnotatedCandidates(t *testing.T) {
	w := slidingWorkflow(t, true)
	s := w.Schema()
	minimal, _, err := distkey.Derive(w)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(minimal.AnnotatedAttrs()); got != 2 {
		t.Fatalf("minimal key annotations = %d, want 2 (%s)", got, minimal.Format(s))
	}
	plan, err := Optimize(w, Config{NumReducers: 50, TotalRecords: 10_000_000})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range plan.Candidates {
		if len(c.Key.AnnotatedAttrs()) > 1 {
			t.Errorf("candidate %d has %d annotations: %s", i, len(c.Key.AnnotatedAttrs()), c.Key.Format(s))
		}
		// Every candidate must be feasible: it generalizes the minimal key.
		if !distkey.Generalizes(s, c.Key, minimal) {
			t.Errorf("candidate %d %s does not generalize minimal %s", i, c.Key.Format(s), minimal.Format(s))
		}
	}
	if len(plan.Candidates) < 4 {
		t.Errorf("candidates = %d, want several", len(plan.Candidates))
	}
	if plan.Explain(s) == "" {
		t.Error("empty Explain")
	}
}

func TestMinBlocksHeuristicCapsCF(t *testing.T) {
	w := slidingWorkflow(t, false)
	base, err := Optimize(w, Config{NumReducers: 50, TotalRecords: 100_000_000})
	if err != nil {
		t.Fatal(err)
	}
	capped, err := Optimize(w, Config{NumReducers: 50, TotalRecords: 100_000_000, MinBlocksPerReducer: 4})
	if err != nil {
		t.Fatal(err)
	}
	if capped.Blocks < 4*50 && capped.Key.IsOverlapping() {
		t.Errorf("2Blocks-style heuristic violated: %d blocks for 50 reducers", capped.Blocks)
	}
	if capped.ClusteringFactor > base.ClusteringFactor {
		t.Errorf("capped cf %d exceeds uncapped %d", capped.ClusteringFactor, base.ClusteringFactor)
	}
}

func TestOptimizeValidation(t *testing.T) {
	w := noSiblingWorkflow(t)
	if _, err := Optimize(w, Config{NumReducers: 0, TotalRecords: 10}); err == nil {
		t.Error("zero reducers accepted")
	}
	if _, err := Optimize(w, Config{NumReducers: 2, TotalRecords: 0}); err == nil {
		t.Error("zero records accepted")
	}
}

func TestSimulatedDispatchAndDetectSkew(t *testing.T) {
	w := slidingWorkflow(t, false)
	s := w.Schema()
	plan, err := Optimize(w, Config{NumReducers: 10, TotalRecords: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	uniform := make([]cube.Record, 3000)
	skewed := make([]cube.Record, 3000)
	ti, _ := s.AttrIndex("t")
	for i := range uniform {
		uniform[i] = cube.Record{rng.Int63n(1000), rng.Int63n(256), rng.Int63n(20 * 86400)}
		// Skew on both key attributes: a handful of v values, first hour only.
		skewed[i] = cube.Record{rng.Int63n(1000), rng.Int63n(4), rng.Int63n(500)}
		_ = ti
	}
	lu, err := SimulatedDispatch(s, plan.Key, plan.ClusteringFactor, uniform, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := SimulatedDispatch(s, plan.Key, plan.ClusteringFactor, skewed, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if DetectSkew(lu, 2.0) {
		t.Errorf("uniform data flagged as skewed: %v", lu)
	}
	if !DetectSkew(ls, 2.0) {
		t.Errorf("temporally skewed data not flagged: %v", ls)
	}
}

func TestChooseBySamplingPrefersBalancedPlan(t *testing.T) {
	w := slidingWorkflow(t, false)
	s := w.Schema()
	plan, err := Optimize(w, Config{NumReducers: 10, TotalRecords: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	skewed := make([]cube.Record, 4000)
	for i := range skewed {
		// Temporal skew: all records in the first 5 of 20 days.
		skewed[i] = cube.Record{rng.Int63n(1000), rng.Int63n(256), rng.Int63n(5 * 86400)}
	}
	choice, err := ChooseBySampling(s, plan, skewed, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(choice.MaxLoads) != len(plan.Candidates) {
		t.Fatalf("MaxLoads = %d, want %d", len(choice.MaxLoads), len(plan.Candidates))
	}
	// The chosen plan's simulated max load must be minimal among candidates.
	chosenIdx := -1
	for i, c := range plan.Candidates {
		if c.Key.Equal(choice.Plan.Key) && c.ClusteringFactor == choice.Plan.ClusteringFactor {
			chosenIdx = i
			break
		}
	}
	if chosenIdx < 0 {
		t.Fatal("chosen plan not among candidates")
	}
	for i, l := range choice.MaxLoads {
		if l < choice.MaxLoads[chosenIdx] {
			t.Errorf("candidate %d has lower simulated load %v than chosen %v", i, l, choice.MaxLoads[chosenIdx])
		}
	}
	// Empty sample: model plan passes through.
	c2, err := ChooseBySampling(s, plan, nil, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !c2.Plan.Key.Equal(plan.Key) {
		t.Error("empty sample changed the plan")
	}
}

func TestPlanCache(t *testing.T) {
	wSliding := slidingWorkflow(t, false)
	s := wSliding.Schema()
	minSliding, _, err := distkey.Derive(wSliding)
	if err != nil {
		t.Fatal(err)
	}
	var cache PlanCache
	if _, _, ok := cache.Lookup(s, minSliding); ok {
		t.Fatal("empty cache hit")
	}
	cache.Store(minSliding, 8)
	cache.Store(minSliding, 8) // dedup
	if cache.Len() != 1 {
		t.Fatalf("cache len = %d", cache.Len())
	}
	key, cf, ok := cache.Lookup(s, minSliding)
	if !ok || cf != 8 || !key.Equal(minSliding) {
		t.Fatalf("lookup failed: %v %v %v", key, cf, ok)
	}
	// A different query whose minimal key is generalized by the cached key
	// also hits: same grain, narrower annotation.
	narrower := minSliding.Clone()
	ti, _ := s.AttrIndex("t")
	narrower.Anns[ti] = distkey.Ann{Low: -1, High: 0}
	if _, _, ok := cache.Lookup(s, narrower); !ok {
		t.Error("cache missed a feasible stored key")
	}
	// A query needing a *wider* window must miss.
	wider := minSliding.Clone()
	wider.Anns[ti] = distkey.Ann{Low: -100, High: 0}
	if _, _, ok := cache.Lookup(s, wider); ok {
		t.Error("cache returned an infeasible key")
	}
}
